"""Tests for the relational substrate: instances, TID, c/pc/pcc-instances."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.events import TRUE, var
from repro.instances import (
    CInstance,
    ColumnarInstance,
    Fact,
    Instance,
    PCCInstance,
    PCInstance,
    TIDInstance,
    fact,
    instance_backend,
    instance_backend_set,
    make_instance,
    pc_from_tid,
    pcc_from_pc,
    pcc_from_tid,
)
from repro.util import ReproError


class TestFact:
    def test_repr(self):
        assert repr(fact("From", "CDG", "MEL")) == "From(CDG, MEL)"

    def test_variable_name_unique(self):
        assert fact("R", 1).variable_name != fact("R", 2).variable_name
        assert fact("R", 1).variable_name != fact("S", 1).variable_name

    def test_equality_and_hash(self):
        assert fact("R", 1, 2) == Fact("R", (1, 2))
        assert hash(fact("R", 1, 2)) == hash(Fact("R", (1, 2)))


class TestInstance:
    def test_add_and_contains(self):
        inst = Instance([fact("R", 1)])
        assert fact("R", 1) in inst
        assert fact("R", 2) not in inst

    def test_set_semantics(self):
        inst = Instance([fact("R", 1), fact("R", 1)])
        assert len(inst) == 1

    def test_domain(self):
        inst = Instance([fact("R", 1, 2), fact("S", 2, 3)])
        assert inst.domain() == {1, 2, 3}

    def test_relations_schema(self):
        inst = Instance([fact("R", 1), fact("S", 1, 2)])
        assert inst.relations() == {"R": 1, "S": 2}

    def test_mixed_arity_rejected(self):
        inst = Instance([fact("R", 1), fact("R", 1, 2)])
        with pytest.raises(ReproError, match="two arities"):
            inst.relations()

    def test_gaifman_graph_edges(self):
        inst = Instance([fact("E", "a", "b"), fact("E", "b", "c")])
        graph = inst.gaifman_graph()
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "c")
        assert not graph.has_edge("a", "c")

    def test_gaifman_ternary_clique(self):
        inst = Instance([fact("T", 1, 2, 3)])
        graph = inst.gaifman_graph()
        assert graph.has_edge(1, 2) and graph.has_edge(2, 3) and graph.has_edge(1, 3)

    def test_treewidth_of_path_instance(self):
        inst = Instance([fact("E", i, i + 1) for i in range(9)])
        assert inst.treewidth_upper_bound() == 1

    def test_union_and_restrict(self):
        a = Instance([fact("R", 1)])
        b = Instance([fact("R", 2)])
        merged = a.union(b)
        assert len(merged) == 2
        assert len(merged.restricted_to([fact("R", 1)])) == 1


class TestTIDInstance:
    def test_probability_bounds(self):
        tid = TIDInstance()
        with pytest.raises(ReproError):
            tid.add(fact("R", 1), 1.4)

    def test_world_count(self):
        tid = TIDInstance({fact("R", 1): 0.5, fact("R", 2): 0.5})
        worlds = list(tid.possible_worlds())
        assert len(worlds) == 4
        assert math.isclose(sum(w for _, w in worlds), 1.0)

    def test_world_probability(self):
        tid = TIDInstance({fact("R", 1): 0.3, fact("R", 2): 0.8})
        world = Instance([fact("R", 2)])
        assert math.isclose(tid.world_probability(world), 0.7 * 0.8)

    def test_event_space_names(self):
        tid = TIDInstance({fact("R", 1): 0.3})
        assert tid.event_space().probability(fact("R", 1).variable_name) == 0.3

    def test_sampler_marginals(self):
        tid = TIDInstance({fact("R", 1): 0.7})
        draw = tid.world_sampler(seed=0)
        hits = sum(fact("R", 1) in draw() for _ in range(2000))
        assert abs(hits / 2000 - 0.7) < 0.05


class TestCInstance:
    def build_trips(self) -> CInstance:
        """Table 1 of the paper: trips annotated over events pods, stoc."""
        ci = CInstance()
        pods, stoc = var("pods"), var("stoc")
        ci.add(fact("Trip", "CDG", "MEL"), pods)
        ci.add(fact("Trip", "MEL", "CDG"), pods & ~stoc)
        ci.add(fact("Trip", "MEL", "PDX"), pods & stoc)
        ci.add(fact("Trip", "CDG", "PDX"), ~pods & stoc)
        ci.add(fact("Trip", "PDX", "CDG"), stoc)
        return ci

    def test_world_selection(self):
        ci = self.build_trips()
        world = ci.world({"pods": True, "stoc": False})
        assert fact("Trip", "CDG", "MEL") in world
        assert fact("Trip", "MEL", "CDG") in world
        assert fact("Trip", "MEL", "PDX") not in world

    def test_world_count_matches_events(self):
        ci = self.build_trips()
        assert len(list(ci.possible_worlds())) == 4

    def test_possibility_and_certainty(self):
        ci = self.build_trips()
        assert ci.is_possible(fact("Trip", "CDG", "MEL"))
        assert not ci.is_certain(fact("Trip", "CDG", "MEL"))
        certain = CInstance({fact("R", 1): TRUE})
        assert certain.is_certain(fact("R", 1))

    def test_conditioning_on_literal(self):
        ci = self.build_trips()
        pinned = ci.conditioned_on_literal("pods", True)
        assert pinned.is_certain(fact("Trip", "CDG", "MEL"))
        assert not pinned.is_possible(fact("Trip", "CDG", "PDX"))

    def test_distinct_worlds_deduplicated(self):
        ci = CInstance({fact("R", 1): var("e") | ~var("e")})
        assert len(ci.distinct_worlds()) == 1


class TestPCInstance:
    def build(self) -> PCInstance:
        pc = PCInstance()
        pc.add_event("pods", 0.7)
        pc.add_event("stoc", 0.4)
        pc.add(fact("Trip", "CDG", "MEL"), var("pods"))
        pc.add(fact("Trip", "PDX", "CDG"), var("stoc"))
        pc.add(fact("Trip", "MEL", "PDX"), var("pods") & var("stoc"))
        return pc

    def test_unregistered_event_rejected(self):
        pc = PCInstance()
        with pytest.raises(ReproError, match="not registered"):
            pc.add(fact("R", 1), var("mystery"))

    def test_fact_probability(self):
        pc = self.build()
        assert math.isclose(pc.fact_probability(fact("Trip", "MEL", "PDX")), 0.28)

    def test_world_distribution_sums_to_one(self):
        pc = self.build()
        assert math.isclose(sum(pc.world_distribution().values()), 1.0)

    def test_conditioning_renormalizes(self):
        pc = self.build().conditioned_on_literal("pods", True)
        assert math.isclose(pc.fact_probability(fact("Trip", "CDG", "MEL")), 1.0)
        assert math.isclose(pc.fact_probability(fact("Trip", "MEL", "PDX")), 0.4)

    def test_from_tid_view(self):
        tid = TIDInstance({fact("R", 1): 0.25})
        pc = pc_from_tid(tid)
        assert math.isclose(pc.fact_probability(fact("R", 1)), 0.25)


class TestPCCInstance:
    def build(self) -> PCCInstance:
        pcc = PCCInstance()
        pcc.add_event("e1", 0.5)
        pcc.add_event("e2", 0.5)
        g = pcc.circuit.and_gate(
            [pcc.circuit.variable("e1"), pcc.circuit.variable("e2")]
        )
        pcc.add(fact("R", 1), g)
        pcc.add(fact("R", 2), pcc.circuit.negation(g))
        return pcc

    def test_world_selection(self):
        pcc = self.build()
        world = pcc.world({"e1": True, "e2": True})
        assert fact("R", 1) in world and fact("R", 2) not in world

    def test_fact_probability_enumerate(self):
        pcc = self.build()
        assert math.isclose(pcc.fact_probability_enumerate(fact("R", 1)), 0.25)
        assert math.isclose(pcc.fact_probability_enumerate(fact("R", 2)), 0.75)

    def test_joint_graph_links_facts_to_gates(self):
        pcc = self.build()
        graph = pcc.joint_graph()
        assert ("d", 1) in graph.nodes
        assert ("g", pcc.gate_of(fact("R", 1))) in graph.nodes
        assert graph.has_edge(("d", 1), ("g", pcc.gate_of(fact("R", 1))))

    def test_joint_width_small_for_local_annotations(self):
        pcc = pcc_from_tid(TIDInstance({fact("E", i, i + 1): 0.5 for i in range(8)}))
        assert pcc.joint_width() <= 3

    def test_conversion_preserves_distribution(self):
        pc = PCInstance()
        pc.add_event("a", 0.3)
        pc.add_event("b", 0.6)
        pc.add(fact("R", 1), var("a") & ~var("b"))
        pcc = pcc_from_pc(pc)
        expected = pc.fact_probability(fact("R", 1))
        assert math.isclose(pcc.fact_probability_enumerate(fact("R", 1)), expected)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_pc_and_pcc_world_distributions_agree(seed):
    import random

    rng = random.Random(seed)
    pc = PCInstance()
    events = [f"e{i}" for i in range(rng.randint(1, 3))]
    for e in events:
        pc.add_event(e, round(rng.uniform(0.1, 0.9), 2))
    for i in range(rng.randint(1, 4)):
        annotation = var(rng.choice(events))
        if rng.random() < 0.5:
            annotation = annotation & ~var(rng.choice(events))
        pc.add(fact("R", i), annotation)
    pcc = pcc_from_pc(pc)
    for f in pc.facts():
        assert math.isclose(
            pc.fact_probability(f),
            pcc.fact_probability_enumerate(f),
            abs_tol=1e-9,
        )


class TestColumnarInstance:
    def build(self) -> "ColumnarInstance":
        col = ColumnarInstance()
        col.add(fact("R", 1))
        col.add(fact("S", 1, "a"))
        col.add(fact("S", 2, "b"))
        return col

    def test_protocol_basics(self):
        col = self.build()
        assert len(col) == 3
        assert fact("S", 1, "a") in col
        assert fact("S", 9, "a") not in col
        assert col.relations() == {"R": 1, "S": 2}
        assert col.domain() == frozenset({1, 2, "a", "b"})

    def test_set_semantics(self):
        col = self.build()
        fid = col.add_fact("R", (1,))
        assert fid == col.fact_id_of(fact("R", 1))
        assert len(col) == 3

    def test_roundtrip_object_instance(self):
        col = self.build()
        obj = col.to_instance()
        assert isinstance(obj, Instance)
        assert set(obj.facts()) == set(col.facts())
        back = ColumnarInstance.from_instance(obj)
        assert set(back.facts()) == set(col.facts())
        assert back.relations() == col.relations()

    def test_variable_names_match_fact_objects(self):
        col = self.build()
        fids = [col.fact_id_of(f) for f in col.facts()]
        names = col.variable_names_for(fids)
        assert names == [f.variable_name for f in col.facts()]

    def test_extend_encoded_dedups_against_add(self):
        col = ColumnarInstance()
        existing = col.add_fact("E", (0, 1))
        codes = [col.intern(v) for v in range(4)]
        left = [codes[0], codes[1], codes[0]]
        right = [codes[1], codes[2], codes[1]]
        fids = list(col.extend_encoded("E", [left, right]))
        # Row 0 and row 2 are the pre-existing (and intra-batch duplicate)
        # fact; only E(1, 2) is fresh.
        assert fids[0] == existing and fids[2] == existing
        assert fids[1] != existing
        assert len(col) == 2

    def test_bulk_load_then_keyed_lookup(self):
        # Bulk loads drop the key→fid dict; the first keyed lookup must
        # rebuild it coherently (same fids, duplicates still detected).
        col = ColumnarInstance()
        col.intern_int_range(5)
        fids = list(col.extend_encoded("E", [[0, 1, 2], [1, 2, 3]]))
        assert col.fact_id_of(fact("E", 1, 2)) == fids[1]
        assert col.add_fact("E", (0, 1)) == fids[0]
        assert col.add_fact("E", (3, 4)) not in fids
        assert len(col) == 4

    def test_bulk_load_materializes_no_facts(self):
        col = ColumnarInstance()
        col.intern_int_range(100)
        col.extend_encoded("E", [list(range(99)), list(range(1, 100))])
        assert col.facts_materialized == 0
        col.fact_at(0)
        assert col.facts_materialized == 1

    def test_mixed_arity_rejected(self):
        col = self.build()
        with pytest.raises(ReproError, match="two arities"):
            col.add(fact("R", 1, 2))


class TestInstanceBackendKnob:
    def test_make_instance_dispatches(self):
        assert isinstance(make_instance("object"), Instance)
        assert isinstance(make_instance("columnar"), ColumnarInstance)
        with pytest.raises(ReproError, match="unknown instance backend"):
            make_instance("arrow")

    def test_set_instance_backend_scopes(self):
        # The suite may itself run under REPRO_INSTANCE_BACKEND=columnar
        # (the CI columnar job does) — scope back to the ambient default.
        ambient = instance_backend()
        with instance_backend_set("columnar"):
            assert instance_backend() == "columnar"
            assert isinstance(make_instance(), ColumnarInstance)
        with instance_backend_set("object"):
            assert isinstance(make_instance(), Instance)
        assert instance_backend() == ambient

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTANCE_BACKEND", "columnar")
        with instance_backend_set(None):
            assert instance_backend() == "columnar"
        monkeypatch.setenv("REPRO_INSTANCE_BACKEND", "parquet")
        with instance_backend_set(None):
            with pytest.raises(ReproError, match="REPRO_INSTANCE_BACKEND"):
                instance_backend()

    def test_tid_takes_backend(self):
        tid = TIDInstance(backend="columnar")
        assert isinstance(tid.instance, ColumnarInstance)
