"""Log-integration workloads for order uncertainty (paper Section 3).

The paper motivates order uncertainty with "integrating logged events from
different machines or files, where the log entries are sequentially ordered
but do not mention a global timestamp" (fetchmail, dmesg). We generate k
totally ordered logs over a shared event vocabulary; their union is a
po-relation whose possible worlds are the admissible global interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.order.algebra import union
from repro.order.posets import LabeledPoset, chain
from repro.util import check, stable_rng

EVENT_KINDS = (
    "connect",
    "auth",
    "fetch",
    "write",
    "flush",
    "disconnect",
    "retry",
    "error",
)


@dataclass
class LogWorkload:
    """Generated logs plus their merged po-relation."""

    logs: list[list[str]]
    merged: LabeledPoset


def generate_logs(
    machines: int, events_per_log: int, seed: int = 0, shared_vocabulary: bool = True
) -> LogWorkload:
    """Generate per-machine ordered logs and their parallel merge.

    With ``shared_vocabulary`` the same event kind can appear in several logs
    (duplicate labels — the hard membership regime); otherwise labels are
    made machine-unique (the tractable distinct-label regime).
    """
    check(machines >= 1 and events_per_log >= 1, "need at least one log entry")
    rng = stable_rng(seed)
    logs: list[list[str]] = []
    for m in range(machines):
        entries = []
        for i in range(events_per_log):
            kind = EVENT_KINDS[rng.randrange(len(EVENT_KINDS))]
            entries.append(kind if shared_vocabulary else f"m{m}:{kind}:{i}")
        logs.append(entries)
    merged = chain(logs[0], prefix="m0_")
    for m, entries in enumerate(logs[1:], start=1):
        merged = union(merged, chain(entries, prefix=f"m{m}_"))
    return LogWorkload(logs=logs, merged=merged)


def true_interleaving(workload: LogWorkload, seed: int = 0) -> tuple[str, ...]:
    """A ground-truth global order consistent with all logs (for testing)."""
    rng = stable_rng(seed)
    positions = [0] * len(workload.logs)
    result: list[str] = []
    total = sum(len(log) for log in workload.logs)
    while len(result) < total:
        candidates = [
            m for m, log in enumerate(workload.logs) if positions[m] < len(log)
        ]
        m = candidates[rng.randrange(len(candidates))]
        result.append(workload.logs[m][positions[m]])
        positions[m] += 1
    return tuple(result)
