"""E13 — compiled circuit IR vs object-graph evaluation throughput.

The compile-once/evaluate-many claim, measured: build one ~10k-gate lineage
circuit (the Theorem-1 pipeline on an R–S–T chain TID), then compare

- repeated ``probability_dd``-style evaluation: the seed object-graph
  walker (re-walks the hash-consed DAG with per-gate dicts on every call)
  against :meth:`CompiledCircuit.probability` on the flat IR;
- per-world Boolean evaluation: ``Circuit.evaluate`` with a fresh valuation
  dict per world against :meth:`CompiledCircuit.evaluate_batch`.

Writes ``BENCH_compiled_eval.json`` next to the repository root with the
raw numbers so CI and future sessions can track the speedup.

Run the table:  python benchmarks/bench_compiled_eval.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.circuits import compile_circuit
from repro.circuits.dd import _probability_dd_object_graph
from repro.core import build_lineage
from repro.queries import atom, cq, variables
from repro.util import stable_rng
from repro.workloads import rst_chain_tid

CHAIN_LENGTH = 200  # ~13k reachable gates, comfortably past the 10k target
PROBABILITY_REPEATS = 20
WORLD_COUNT = 50


def build_circuit():
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = rst_chain_tid(CHAIN_LENGTH, seed=0)
    lineage = build_lineage(tid.instance, query)
    return lineage, tid.event_space()


def main() -> None:
    print("E13 — compiled circuit IR vs object-graph evaluation")
    lineage, space = build_circuit()
    circuit = lineage.circuit
    gates = len(circuit.reachable_from_output())
    print(f"lineage circuit: {gates} reachable gates,"
          f" {len(circuit.variables())} variables")

    start = time.perf_counter()
    compiled = compile_circuit(circuit)
    marginals = compiled.slot_marginals(space)
    compiled.probability(marginals)  # builds the float kernel
    compiled.evaluate_batch([[False] * len(compiled.variables())])  # bool kernel
    compile_seconds = time.perf_counter() - start

    # Repeated probability evaluation (the Theorem-1 hot path).
    start = time.perf_counter()
    for _ in range(PROBABILITY_REPEATS):
        p_object = _probability_dd_object_graph(circuit, space)
    object_seconds = (time.perf_counter() - start) / PROBABILITY_REPEATS
    start = time.perf_counter()
    for _ in range(PROBABILITY_REPEATS):
        p_compiled = compiled.probability(marginals)
    compiled_seconds = (time.perf_counter() - start) / PROBABILITY_REPEATS
    assert abs(p_object - p_compiled) < 1e-9, "paths must agree"
    probability_speedup = object_seconds / compiled_seconds

    # Batch possible-world evaluation (the sampling hot path).
    rng = stable_rng(0)
    names = compiled.variables()
    rows = [[rng.random() < 0.5 for _ in names] for _ in range(WORLD_COUNT)]
    dict_rows = [dict(zip(names, row)) for row in rows]
    start = time.perf_counter()
    object_bits = [circuit.evaluate(row) for row in dict_rows]
    object_world_seconds = (time.perf_counter() - start) / WORLD_COUNT
    start = time.perf_counter()
    compiled_bits = compiled.evaluate_batch(rows)
    compiled_world_seconds = (time.perf_counter() - start) / WORLD_COUNT
    assert object_bits == compiled_bits, "paths must agree"
    batch_speedup = object_world_seconds / compiled_world_seconds

    print(f"\none-time compile + kernel build: {compile_seconds * 1e3:.1f} ms")
    print(f"{'path':<34} {'per call':>12} {'speedup':>9}")
    print(f"{'probability, object graph':<34} {object_seconds * 1e3:>9.3f} ms {'1.0x':>9}")
    print(f"{'probability, compiled IR':<34} {compiled_seconds * 1e3:>9.3f} ms"
          f" {probability_speedup:>8.1f}x")
    print(f"{'world eval, object graph':<34} {object_world_seconds * 1e3:>9.3f} ms {'1.0x':>9}")
    print(f"{'world eval, compiled batch':<34} {compiled_world_seconds * 1e3:>9.3f} ms"
          f" {batch_speedup:>8.1f}x")

    result = {
        "gates": gates,
        "variables": len(names),
        "probability_repeats": PROBABILITY_REPEATS,
        "world_count": WORLD_COUNT,
        "compile_seconds": compile_seconds,
        "object_probability_seconds": object_seconds,
        "compiled_probability_seconds": compiled_seconds,
        "probability_speedup": probability_speedup,
        "object_world_seconds": object_world_seconds,
        "compiled_world_seconds": compiled_world_seconds,
        "batch_speedup": batch_speedup,
    }
    out_path = Path(__file__).resolve().parents[1] / "BENCH_compiled_eval.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    verdict = "PASS" if probability_speedup >= 5.0 else "FAIL"
    print(f"target: >= 5x on repeated probability evaluation — {verdict}"
          f" ({probability_speedup:.1f}x)")


if __name__ == "__main__":
    main()
