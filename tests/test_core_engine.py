"""Tests for the lineage engine: Theorems 1 and 2 against the oracle."""

import math
import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    pcc_probability_enumerate,
    tid_probability_enumerate,
)
from repro.circuits import (
    check_decomposability,
    check_determinism_sampled,
)
from repro.core import (
    BipartiteAutomaton,
    ParityAutomaton,
    STConnectivityAutomaton,
    build_lineage,
    build_provenance_circuit,
    conjunction,
    disjunction,
    negation,
    pcc_probability,
    tid_probability,
)
from repro.events import var
from repro.instances import PCInstance, TIDInstance, fact, pcc_from_pc
from repro.queries import atom, cq, ucq, variables

X, Y, Z = variables("x", "y", "z")
Q_RST = cq(atom("R", X), atom("S", X, Y), atom("T", Y))


def random_rst_tid(seed: int, max_n: int = 5) -> TIDInstance:
    rng = random.Random(seed)
    tid = TIDInstance()
    n = rng.randint(2, max_n)
    for i in range(n):
        if rng.random() < 0.8:
            tid.add(fact("R", i), round(rng.random(), 2))
        if rng.random() < 0.8:
            tid.add(fact("T", i), round(rng.random(), 2))
    for _ in range(rng.randint(1, 2 * n)):
        tid.add(fact("S", rng.randrange(n), rng.randrange(n)), round(rng.random(), 2))
    return tid


def random_graph_tid(seed: int, max_n: int = 6) -> TIDInstance:
    rng = random.Random(seed)
    tid = TIDInstance()
    n = rng.randint(3, max_n)
    for i in range(n - 1):
        tid.add(fact("E", i, i + 1), round(rng.uniform(0.1, 0.9), 2))
    for _ in range(rng.randint(0, 3)):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            tid.add(fact("E", min(a, b), max(a, b)), round(rng.uniform(0.1, 0.9), 2))
    return tid


class _Oracle:
    """Wrap a world-predicate so the enumeration baselines can use it."""

    def __init__(self, fn):
        self.fn = fn

    def holds_in(self, world):
        return self.fn(world)


def stconn_oracle(s, t):
    def fn(world):
        graph = nx.Graph()
        graph.add_nodes_from([s, t])
        for f in world.facts():
            if f.relation == "E":
                graph.add_edge(*f.args)
        return nx.has_path(graph, s, t)

    return _Oracle(fn)


def bipartite_oracle():
    def fn(world):
        graph = nx.Graph()
        for f in world.facts():
            if f.relation == "E":
                if f.args[0] == f.args[1]:
                    return False
                graph.add_edge(*f.args)
        return nx.is_bipartite(graph)

    return _Oracle(fn)


class TestCQLineage:
    def test_matches_oracle_on_trips_example(self):
        tid = TIDInstance(
            {
                fact("R", 1): 0.4,
                fact("S", 1, 2): 0.5,
                fact("T", 2): 0.9,
            }
        )
        assert math.isclose(tid_probability(Q_RST, tid), 0.4 * 0.5 * 0.9)

    @pytest.mark.parametrize("seed", range(20))
    def test_matches_enumeration_on_random_instances(self, seed):
        tid = random_rst_tid(seed)
        assert math.isclose(
            tid_probability(Q_RST, tid),
            tid_probability_enumerate(Q_RST, tid),
            abs_tol=1e-9,
        )

    def test_lineage_is_deterministic_and_decomposable(self):
        tid = random_rst_tid(99)
        lineage = build_lineage(tid.instance, Q_RST)
        assert check_determinism_sampled(lineage.circuit, trials=300)
        assert check_decomposability(lineage.circuit)

    def test_lineage_circuit_boolean_semantics(self):
        tid = random_rst_tid(3)
        lineage = build_lineage(tid.instance, Q_RST)
        for world, _p in tid.possible_worlds():
            valuation = {
                f.variable_name: (f in world) for f in tid.facts()
            }
            assert lineage.circuit.evaluate(valuation) == Q_RST.holds_in(world)

    def test_query_with_constants(self):
        tid = TIDInstance({fact("S", "paris", "rome"): 0.5, fact("S", "oslo", "rome"): 0.5})
        q = cq(atom("S", "paris", Y))
        assert math.isclose(tid_probability(q, tid), 0.5)

    def test_empty_instance(self):
        tid = TIDInstance()
        assert tid_probability(Q_RST, tid) == 0.0

    def test_certain_facts(self):
        tid = TIDInstance(
            {fact("R", 1): 1.0, fact("S", 1, 2): 1.0, fact("T", 2): 1.0}
        )
        assert math.isclose(tid_probability(Q_RST, tid), 1.0)

    @pytest.mark.parametrize("seed", range(8))
    def test_ucq_matches_enumeration(self, seed):
        tid = random_rst_tid(seed, max_n=4)
        q = ucq(cq(atom("R", X), atom("S", X, Y)), cq(atom("T", Y)))
        assert math.isclose(
            tid_probability(q, tid),
            tid_probability_enumerate(q, tid),
            abs_tol=1e-9,
        )

    def test_self_join_query(self):
        # Beyond Dalvi–Suciu safe plans: self-joins handled structurally.
        q = cq(atom("E", X, Y), atom("E", Y, Z))
        tid = TIDInstance(
            {fact("E", 1, 2): 0.5, fact("E", 2, 3): 0.5, fact("E", 3, 4): 0.5}
        )
        assert math.isclose(
            tid_probability(q, tid),
            tid_probability_enumerate(q, tid),
            abs_tol=1e-9,
        )


class TestGraphAutomata:
    @pytest.mark.parametrize("seed", range(12))
    def test_stconnectivity_matches_oracle(self, seed):
        tid = random_graph_tid(seed)
        n = max(max(f.args) for f in tid.facts()) + 1
        auto = STConnectivityAutomaton(0, n - 1)
        assert math.isclose(
            tid_probability(auto, tid),
            tid_probability_enumerate(stconn_oracle(0, n - 1), tid),
            abs_tol=1e-9,
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_bipartite_matches_oracle(self, seed):
        tid = random_graph_tid(seed)
        assert math.isclose(
            tid_probability(BipartiteAutomaton(), tid),
            tid_probability_enumerate(bipartite_oracle(), tid),
            abs_tol=1e-9,
        )

    @pytest.mark.parametrize("parity", [0, 1])
    def test_parity_matches_oracle(self, parity):
        tid = random_graph_tid(5)
        oracle = _Oracle(
            lambda world: len([f for f in world.facts() if f.relation == "E"]) % 2
            == parity
        )
        assert math.isclose(
            tid_probability(ParityAutomaton("E", parity), tid),
            tid_probability_enumerate(oracle, tid),
            abs_tol=1e-9,
        )

    def test_parity_complement(self):
        tid = random_graph_tid(2)
        even = tid_probability(ParityAutomaton("E", 0), tid)
        odd = tid_probability(ParityAutomaton("E", 1), tid)
        assert math.isclose(even + odd, 1.0)

    def test_same_source_target_always_connected(self):
        tid = random_graph_tid(1)
        assert tid_probability(STConnectivityAutomaton(0, 0), tid) == 1.0

    def test_missing_terminals_never_connected(self):
        tid = TIDInstance({fact("E", 1, 2): 0.5})
        assert tid_probability(STConnectivityAutomaton(77, 78), tid) == 0.0


class TestBooleanCombinators:
    def test_negation_probability(self):
        tid = random_graph_tid(4)
        auto = STConnectivityAutomaton(0, 1)
        p = tid_probability(auto, tid)
        assert math.isclose(tid_probability(negation(auto), tid), 1.0 - p)

    def test_conjunction_of_parity_and_connectivity(self):
        tid = random_graph_tid(7)
        n = max(max(f.args) for f in tid.facts()) + 1
        conn = STConnectivityAutomaton(0, n - 1)
        even = ParityAutomaton("E", 0)
        both = conjunction(conn, even)
        oracle_conn = stconn_oracle(0, n - 1)
        oracle = _Oracle(
            lambda w: oracle_conn.holds_in(w)
            and len([f for f in w.facts() if f.relation == "E"]) % 2 == 0
        )
        assert math.isclose(
            tid_probability(both, tid),
            tid_probability_enumerate(oracle, tid),
            abs_tol=1e-9,
        )

    def test_disjunction_inclusion_exclusion(self):
        tid = random_graph_tid(9)
        a = ParityAutomaton("E", 0)
        b = BipartiteAutomaton()
        pa = tid_probability(a, tid)
        pb = tid_probability(b, tid)
        pboth = tid_probability(conjunction(a, b), tid)
        peither = tid_probability(disjunction(a, b), tid)
        assert math.isclose(peither, pa + pb - pboth, abs_tol=1e-9)


class TestPCCTheorem2:
    @pytest.mark.parametrize("seed", range(10))
    def test_pcc_matches_enumeration(self, seed):
        rng = random.Random(seed)
        pc = PCInstance()
        events = [f"e{i}" for i in range(rng.randint(2, 4))]
        for e in events:
            pc.add_event(e, round(rng.uniform(0.1, 0.9), 2))
        n = rng.randint(2, 4)
        for i in range(n):
            annotation = var(rng.choice(events))
            if rng.random() < 0.5:
                annotation = annotation & ~var(rng.choice(events))
            pc.add(fact("R", i), annotation)
            pc.add(fact("T", i), var(rng.choice(events)))
            pc.add(fact("S", i, (i + 1) % n), var(rng.choice(events)))
        pcc = pcc_from_pc(pc)
        assert math.isclose(
            pcc_probability(Q_RST, pcc),
            pcc_probability_enumerate(Q_RST, pcc),
            abs_tol=1e-9,
        )

    def test_pcc_with_graph_automaton(self):
        pc = PCInstance()
        pc.add_event("a", 0.6)
        pc.add_event("b", 0.3)
        pc.add(fact("E", 1, 2), var("a"))
        pc.add(fact("E", 2, 3), var("a") | var("b"))
        pcc = pcc_from_pc(pc)
        auto = STConnectivityAutomaton(1, 3)
        oracle = stconn_oracle(1, 3)
        assert math.isclose(
            pcc_probability(auto, pcc),
            pcc_probability_enumerate(oracle, pcc),
            abs_tol=1e-9,
        )

    def test_correlated_facts_differ_from_independent(self):
        # Two facts guarded by the same event: perfectly correlated.
        pc = PCInstance()
        pc.add_event("e", 0.5)
        pc.add(fact("R", 1), var("e"))
        pc.add(fact("S", 1, 2), var("e"))
        pc.add(fact("T", 2), var("e"))
        pcc = pcc_from_pc(pc)
        assert math.isclose(pcc_probability(Q_RST, pcc), 0.5)


class TestProvenanceCircuit:
    @pytest.mark.parametrize("seed", range(10))
    def test_boolean_semantics_matches_query(self, seed):
        tid = random_rst_tid(seed, max_n=4)
        lineage = build_provenance_circuit(tid.instance, Q_RST)
        for world, _p in tid.possible_worlds():
            valuation = {f.variable_name: (f in world) for f in tid.facts()}
            assert lineage.circuit.evaluate(valuation) == Q_RST.holds_in(world)

    def test_monotone_no_negation(self):
        tid = random_rst_tid(0)
        lineage = build_provenance_circuit(tid.instance, Q_RST)
        kinds = {
            lineage.circuit.gate(g).kind
            for g in lineage.circuit.reachable_from_output()
        }
        assert "not" not in kinds


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_engine_agrees_with_oracle_property(seed):
    tid = random_rst_tid(seed, max_n=4)
    assert math.isclose(
        tid_probability(Q_RST, tid),
        tid_probability_enumerate(Q_RST, tid),
        abs_tol=1e-9,
    )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_stconn_agrees_with_oracle_property(seed):
    tid = random_graph_tid(seed, max_n=5)
    n = max(max(f.args) for f in tid.facts()) + 1
    assert math.isclose(
        tid_probability(STConnectivityAutomaton(0, n - 1), tid),
        tid_probability_enumerate(stconn_oracle(0, n - 1), tid),
        abs_tol=1e-9,
    )
