"""A probabilistic model over possible orders: uniform linear extensions.

The paper's §3 asks "How can we define a probability distribution on the
possible ways to order the data?" The canonical baseline is the uniform
distribution over linear extensions; a world's probability is then the
number of extensions realizing its label sequence over the total count.
Counting realizations of a *label sequence* generalizes both membership
(count > 0) and extension counting (sum over sequences).
"""

from __future__ import annotations

from repro.order.linear_extensions import count_linear_extensions
from repro.order.posets import LabeledPoset
from repro.util import check


def count_realizations(poset: LabeledPoset, sequence: tuple) -> int:
    """Number of linear extensions whose label sequence equals ``sequence``.

    Backtracking with memoization on (position, remaining antichain state);
    exponential worst case (duplicate labels), polynomial when labels are
    distinct.
    """
    if len(sequence) != len(poset):
        return 0
    elements = poset.elements()
    predecessor_sets = {e: poset.predecessors(e) for e in elements}
    memo: dict[tuple[int, frozenset], int] = {}

    def count(index: int, remaining: frozenset) -> int:
        if index == len(sequence):
            return 1 if not remaining else 0
        key = (index, remaining)
        cached = memo.get(key)
        if cached is not None:
            return cached
        target = sequence[index]
        total = 0
        for e in remaining:
            if poset.label(e) == target and not (predecessor_sets[e] & remaining):
                total += count(index + 1, remaining - {e})
        memo[key] = total
        return total

    return count(0, frozenset(elements))


def world_probability(poset: LabeledPoset, sequence: tuple) -> float:
    """P(world = ``sequence``) under uniform linear extensions."""
    total = count_linear_extensions(poset)
    check(total > 0, "poset has no linear extensions")
    return count_realizations(poset, sequence) / total


def most_probable_worlds(
    poset: LabeledPoset, k: int = 3
) -> list[tuple[tuple, float]]:
    """The ``k`` most probable worlds under uniform linear extensions.

    Enumerates distinct label sequences (exponential; for small posets and
    the benchmarks/examples).
    """
    from repro.order.linear_extensions import extension_labels, iter_linear_extensions

    counts: dict[tuple, int] = {}
    total = 0
    for extension in iter_linear_extensions(poset):
        labels = extension_labels(poset, extension)
        counts[labels] = counts.get(labels, 0) + 1
        total += 1
    check(total > 0, "poset has no linear extensions")
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(labels, hits / total) for labels, hits in ranked[:k]]


def pair_order_probability(poset: LabeledPoset, before, after) -> float:
    """P(every ``before``-labeled element precedes every ``after`` one).

    A probabilistic certain-answer primitive: 1.0 means the label order is
    certain, 0.0 impossible.
    """
    from repro.order.linear_extensions import extension_labels, iter_linear_extensions

    hits = 0
    total = 0
    for extension in iter_linear_extensions(poset):
        labels = extension_labels(poset, extension)
        total += 1
        positions_before = [i for i, l in enumerate(labels) if l == before]
        positions_after = [i for i, l in enumerate(labels) if l == after]
        if (
            positions_before
            and positions_after
            and max(positions_before) < min(positions_after)
        ):
            hits += 1
    check(total > 0, "poset has no linear extensions")
    return hits / total
