"""Direct probability evaluation for deterministic, decomposable circuits.

The lineage circuits produced by running a *deterministic* bottom-up
automaton over a tree encoding (the paper's Theorem 1 pipeline) are

- **deterministic**: the children of every OR gate are pairwise logically
  exclusive (two distinct automaton states cannot both be reached), and
- **decomposable**: the children of every AND gate mention disjoint sets of
  variables (disjoint subtrees of the encoding, plus the freshly read fact).

On such circuits, with *independent* variables (the TID case), probability is
a single bottom-up pass: ``P(OR) = Σ P(child)``, ``P(AND) = Π P(child)``,
``P(NOT g) = 1 − P(g)``. This is the linear-time claim of Theorem 1.

The functions here trust the flags the lineage engine sets; tests verify
determinism/decomposability empirically and against the enumeration oracle.
"""

from __future__ import annotations

from repro.circuits.circuit import AND, CONST, NOT, OR, VAR, Circuit
from repro.events import EventSpace
from repro.util import ReproError, check, stable_rng


def probability_dd(circuit: Circuit, space: EventSpace) -> float:
    """Evaluate the probability of a det-decomposable circuit bottom-up.

    Linear in the circuit size (unit-cost arithmetic). Correct only when the
    circuit is deterministic and decomposable and the variables are
    independent; use the ``message_passing`` engine otherwise.

    .. deprecated::
        Thin wrapper over the ``dd`` engine of
        :mod:`repro.circuits.evaluation`; the circuit is compiled to the
        flat IR once (cached) and evaluated in a single array pass.
    """
    from repro.circuits.evaluation import probability

    return probability(circuit, space, engine="dd")


def _probability_dd_object_graph(circuit: Circuit, space: EventSpace) -> float:
    """The seed object-graph walker, kept as the benchmark baseline.

    Re-walks the hash-consed gate DAG and fills a per-gate dict on every
    call — exactly the constant factors the compiled IR removes
    (``benchmarks/bench_compiled_eval.py`` measures the gap).
    """
    check(circuit.output is not None, "circuit has no output gate")
    values: dict[int, float] = {}
    for gid in circuit.reachable_from_output():
        gate = circuit.gate(gid)
        if gate.kind == VAR:
            values[gid] = space.probability(gate.payload)  # type: ignore[arg-type]
        elif gate.kind == CONST:
            values[gid] = 1.0 if gate.payload else 0.0
        elif gate.kind == NOT:
            values[gid] = 1.0 - values[gate.inputs[0]]
        elif gate.kind == AND:
            product = 1.0
            for i in gate.inputs:
                product *= values[i]
            values[gid] = product
        elif gate.kind == OR:
            values[gid] = sum(values[i] for i in gate.inputs)
        else:  # pragma: no cover
            raise ReproError(f"unknown gate kind {gate.kind!r}")
    return values[circuit.output]  # type: ignore[index]


def check_determinism_sampled(circuit: Circuit, trials: int = 200, seed: int = 0) -> bool:
    """Empirically test that OR gates have mutually exclusive children.

    Draws random valuations and checks that no OR gate ever sees two true
    children. Exact checking is coNP-hard; sampling suffices as a test-time
    sanity check for the lineage engine's by-construction guarantee.
    """
    names = sorted(circuit.variables())
    rng = stable_rng(seed)
    reachable = circuit.reachable_from_output() if circuit.output is not None else list(
        circuit.gate_ids()
    )
    for _ in range(trials):
        valuation = {n: rng.random() < 0.5 for n in names}
        values: dict[int, bool] = {}
        for gid in reachable:
            gate = circuit.gate(gid)
            if gate.kind == VAR:
                values[gid] = valuation[gate.payload]  # type: ignore[index]
            elif gate.kind == CONST:
                values[gid] = bool(gate.payload)
            elif gate.kind == NOT:
                values[gid] = not values[gate.inputs[0]]
            elif gate.kind == AND:
                values[gid] = all(values[i] for i in gate.inputs)
            else:
                true_children = sum(1 for i in gate.inputs if values[i])
                if true_children > 1:
                    return False
                values[gid] = true_children == 1
    return True


def check_decomposability(circuit: Circuit) -> bool:
    """Exactly test that AND gates have variable-disjoint children."""
    reachable = circuit.reachable_from_output() if circuit.output is not None else list(
        circuit.gate_ids()
    )
    supports: dict[int, frozenset[str]] = {}
    for gid in reachable:
        gate = circuit.gate(gid)
        if gate.kind == VAR:
            supports[gid] = frozenset({gate.payload})  # type: ignore[arg-type]
        elif gate.kind == CONST:
            supports[gid] = frozenset()
        else:
            union: set[str] = set()
            for i in gate.inputs:
                child_support = supports[i]
                if gate.kind == AND and union & child_support:
                    return False
                union |= child_support
            supports[gid] = frozenset(union)
    return True
