"""Trichotomy-routed certain query answering.

:func:`certain_answers` is the entry point: classify the query with the
attack-graph test, then route —

- **fo** → execute the first-order rewriting directly against the
  instance (either backend).  No repairs are enumerated and **no circuit
  is ever compiled** — ``compile_stats()`` is untouched.
- **ptime** → the same rewriting recursion; when it gets stuck on a
  weak cycle it runs the polynomial propagation solver
  (:func:`_pair_certain`) on the residual two-atom core.  Residual
  shapes the solver doesn't cover fall back to the circuit encoding
  (counted in ``cqa_stats()["circuit_fallbacks"]``).
- **conp** → encode "q holds in a uniformly random repair" as a
  provenance circuit and threshold the probability
  (:func:`repro.cqa.circuit.certain_by_circuit`).

The recursion eliminates *unattacked* atoms (recomputing the residual
attack graph as bindings turn variables into constants), which is sound
for every class — the Koutris–Wijsen unattacked-atom lemma does not care
what the rest of the query looks like.  For the FO class it always runs
to completion; that is what "FO-rewritable" means.
"""

from __future__ import annotations

from repro.cqa.attacks import CONP, FO, PTIME, attack_graph, classify, substitute_atom
from repro.cqa.circuit import certain_by_circuit
from repro.cqa.repairs import certain_oracle
from repro.instances.base import AbstractInstance, Fact
from repro.queries.cq import Atom, ConjunctiveQuery, Variable, _match
from repro.queries.keys import KeySpec
from repro.util import ReproError, check

__all__ = ["certain_answers", "cqa_stats", "reset_cqa_stats"]

_STATS = {
    "fo": 0,
    "ptime": 0,
    "conp": 0,
    "pair_solver": 0,
    "circuit_fallbacks": 0,
    "forced_circuit": 0,
    "forced_oracle": 0,
}

#: The methods ``certain_answers`` accepts; "auto" is trichotomy routing.
METHODS = ("auto", "rewrite", "circuit", "oracle")


def cqa_stats() -> dict[str, int]:
    """Counters of how queries were routed since the last reset."""
    return dict(_STATS)


def reset_cqa_stats() -> None:
    """Zero the routing counters (used by benchmarks and tests)."""
    for name in _STATS:
        _STATS[name] = 0


class _BlockCache:
    """Memoized ``key_index`` lookups for one (instance, keys) pair.

    The rewriting recursion asks for the same relation's blocks once per
    branch; the index is a pure function of the instance, so build it
    once.
    """

    def __init__(self, instance: AbstractInstance, keys: KeySpec):
        self.instance = instance
        self.keys = keys
        self._indexes: dict[str, dict[tuple, list[Fact]]] = {}
        self._schema = instance.relations()

    def index(self, relation: str) -> dict[tuple, list[Fact]] | None:
        if relation not in self._indexes:
            arity = self._schema.get(relation)
            if arity is None:
                self._indexes[relation] = None
            else:
                self._indexes[relation] = self.instance.key_index(
                    relation, self.keys.positions_for(relation, arity)
                )
        return self._indexes[relation]


def certain_answers(
    query: ConjunctiveQuery,
    instance: AbstractInstance,
    keys: KeySpec,
    method: str = "auto",
) -> bool:
    """Is ``query`` true in every repair of ``instance`` under ``keys``?

    ``method`` is normally ``"auto"`` (classify, then route per the
    trichotomy).  ``"rewrite"`` forces the rewriting recursion and raises
    when the query is not FO-rewritable; ``"circuit"`` forces the
    uniform-repair circuit encoding; ``"oracle"`` forces brute-force
    repair enumeration (small instances only).
    """
    check(method in METHODS, f"unknown CQA method {method!r}; expected one of {METHODS}")
    if method == "oracle":
        _STATS["forced_oracle"] += 1
        return certain_oracle(query, instance, keys)
    if method == "circuit":
        _STATS["forced_circuit"] += 1
        return certain_by_circuit(query, instance, keys)

    verdict = classify(query, keys)
    cache = _BlockCache(instance, keys)
    if method == "rewrite":
        if verdict.trichotomy != FO:
            raise ReproError(
                f"query is {verdict.trichotomy}-class: certainty is not FO-rewritable"
            )
        _STATS[FO] += 1
        return _certain(list(query.atoms), cache, allow_fallback=False)

    _STATS[verdict.trichotomy] += 1
    if verdict.trichotomy == CONP:
        return certain_by_circuit(query, instance, keys)
    return _certain(list(query.atoms), cache, allow_fallback=verdict.trichotomy == PTIME)


def _certain(atoms: list[Atom], cache: _BlockCache, allow_fallback: bool) -> bool:
    """The rewriting recursion over already-substituted atoms."""
    if not atoms:
        return True
    attacks = attack_graph(atoms, cache.keys)
    attacked = {a.target for a in attacks}
    for i in range(len(atoms)):
        if i not in attacked:
            return _eliminate(atoms, i, cache, allow_fallback)

    # Every atom is attacked: a cycle survived the bindings.
    pair = _as_weak_pair(atoms, attacks)
    if pair is not None:
        _STATS["pair_solver"] += 1
        return _pair_certain(*pair, cache)
    if not allow_fallback:
        raise ReproError("rewriting stuck on a cyclic residual; query is not FO-class")
    _STATS["circuit_fallbacks"] += 1
    return certain_by_circuit(
        ConjunctiveQuery(tuple(atoms)), cache.instance, cache.keys
    )


def _eliminate(atoms: list[Atom], i: int, cache: _BlockCache, allow_fallback: bool) -> bool:
    """One rewriting step: ∃ block of atom i whose every fact matches and
    whose every induced residual is certain."""
    a = atoms[i]
    rest = atoms[:i] + atoms[i + 1 :]
    index = cache.index(a.relation)
    if index is None:
        return False  # relation empty in every repair: the atom cannot hold
    positions = cache.keys.positions_for(a.relation, len(a.terms))
    constant_keys = [
        (slot, a.terms[p])
        for slot, p in enumerate(positions)
        if not isinstance(a.terms[p], Variable)
    ]
    for key_tuple, block in index.items():
        if any(key_tuple[slot] != value for slot, value in constant_keys):
            continue
        for f in block:
            binding = _match(a, f, {})
            if binding is None:
                break
            residual = [substitute_atom(b, binding) for b in rest]
            if not _certain(residual, cache, allow_fallback):
                break
        else:
            return True
    return False


def _as_weak_pair(
    atoms: list[Atom], attacks
) -> tuple[Atom, Atom] | None:
    """Match the residual against the shape the propagation solver covers.

    Exactly two atoms, attacking each other weakly, over the *same*
    variable set — so each fact of one atom determines its unique "good
    partner" in the other, and good pairs form a matching.
    """
    if len(atoms) != 2:
        return None
    kinds = {(a.source, a.target): a.weak for a in attacks}
    if kinds.get((0, 1)) is not True or kinds.get((1, 0)) is not True:
        return None
    if atoms[0].variables() != atoms[1].variables():
        return None
    return atoms[0], atoms[1]


def _pair_certain(a: Atom, b: Atom, cache: _BlockCache) -> bool:
    """Polynomial certainty for a residual weak 2-cycle over equal variables.

    A repair falsifies ``a ∧ b`` iff it avoids every *good pair* — a fact
    of ``a``'s relation and its unique partner in ``b``'s relation that
    jointly satisfy both atoms.  Propagate forced choices to a fixpoint:

    - a block containing a *free* (pair-less) fact can always pick it, so
      it constrains nothing — drop it, killing its facts' pairs;
    - a singleton block is forced, so its fact's partner is excluded from
      the partner's block; an emptied block means no falsifying repair
      exists — **certain**.

    At a fixpoint with all live blocks ≥ 2 and every live fact paired, a
    falsifying repair always exists: pairs form a matching (max degree 1
    between blocks), and by Haxell's independent-transversal theorem any
    part sizes ≥ 2·Δ = 2 admit a transversal avoiding all edges — so the
    answer is **not certain**.
    """
    instance = cache.instance
    partner: dict[Fact, Fact] = {}
    for f in instance.by_relation(a.relation):
        binding = _match(a, f, {})
        if binding is None:
            continue
        g = Fact(
            b.relation,
            tuple(
                binding[t] if isinstance(t, Variable) else t for t in b.terms
            ),
        )
        if g in instance and _match(b, g, binding) is not None:
            partner[f] = g
            partner[g] = f

    index_a = cache.index(a.relation)
    index_b = cache.index(b.relation)
    all_blocks = [list(blk) for idx in (index_a, index_b) if idx for blk in idx.values()]
    alive: list[set[Fact]] = [set(blk) for blk in all_blocks]
    block_of = {f: i for i, blk in enumerate(all_blocks) for f in blk}
    dead = [False] * len(alive)

    def drop_pair(f: Fact) -> None:
        g = partner.pop(f, None)
        if g is not None:
            partner.pop(g, None)

    changed = True
    while changed:
        changed = False
        for idx, facts in enumerate(alive):
            if dead[idx]:
                continue
            free = next((f for f in facts if f not in partner), None)
            if free is not None:
                dead[idx] = True
                for f in facts:
                    drop_pair(f)
                changed = True
                continue
            if len(facts) == 1:
                (forced,) = facts
                dead[idx] = True
                g = partner.get(forced)
                drop_pair(forced)
                if g is not None:
                    g_block = block_of[g]
                    if not dead[g_block]:
                        alive[g_block].discard(g)
                        if not alive[g_block]:
                            return True
                changed = True
    return False
