"""Small shared helpers used across the library.

Everything here is dependency-free so that any subpackage can import it
without creating cycles.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable, Iterator
from typing import TypeVar

T = TypeVar("T")


class ReproError(Exception):
    """Base class for all errors raised by this library."""


def check(condition: bool, message: str) -> None:
    """Raise :class:`ReproError` with ``message`` unless ``condition`` holds.

    Used for validating user-facing invariants (as opposed to ``assert``,
    which guards internal logic and may be stripped with ``-O``).
    """
    if not condition:
        raise ReproError(message)


def powerset(items: Iterable[T]) -> Iterator[tuple[T, ...]]:
    """Yield every subset of ``items`` as a tuple, smallest subsets first.

    >>> list(powerset([1, 2]))
    [(), (1,), (2,), (1, 2)]
    """
    pool = list(items)
    return itertools.chain.from_iterable(
        itertools.combinations(pool, size) for size in range(len(pool) + 1)
    )


def pairs(items: Iterable[T]) -> Iterator[tuple[T, T]]:
    """Yield all unordered pairs of distinct elements of ``items``."""
    return itertools.combinations(items, 2)


def stable_rng(seed: int | None) -> random.Random:
    """Return a :class:`random.Random` seeded deterministically.

    All randomized components of the library accept a ``seed`` and create
    their generator through this helper so behaviour is reproducible.
    """
    return random.Random(seed if seed is not None else 0)


def fresh_name_factory(prefix: str):
    """Return a zero-argument callable producing ``prefix0, prefix1, ...``."""
    counter = itertools.count()

    def fresh() -> str:
        return f"{prefix}{next(counter)}"

    return fresh
