"""Bottom-up tree automata and the query-to-automaton bridge (S7)."""

from repro.automata.bridge import PatternAutomaton
from repro.automata.bta import TreeAutomaton
from repro.automata.trees import (
    LEAF,
    BinaryTree,
    decode_world,
    encode_world,
    leaf,
    node,
)

__all__ = [
    "BinaryTree",
    "LEAF",
    "PatternAutomaton",
    "TreeAutomaton",
    "decode_world",
    "encode_world",
    "leaf",
    "node",
]
