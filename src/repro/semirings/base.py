"""Commutative semirings for provenance (Green–Karvounarakis–Tannen).

The paper connects its lineage circuits to semiring provenance: for monotone
queries, the circuits are provenance circuits matching the standard
definitions *for absorptive semirings* (those where ``a + a·b = a``). This
module provides the semiring protocol, the standard zoo of instances, and an
empirical absorptivity check used by tests and the E7 benchmark.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass



class Semiring:
    """A commutative semiring ``(K, ⊕, ⊗, 0, 1)``.

    Subclasses provide ``zero``, ``one``, ``add``, ``multiply`` and may
    override ``is_absorptive_hint`` when absorptivity is known analytically.
    """

    name = "semiring"

    def zero(self):
        """Additive identity."""
        raise NotImplementedError

    def one(self):
        """Multiplicative identity."""
        raise NotImplementedError

    def add(self, a, b):
        """Semiring addition ⊕."""
        raise NotImplementedError

    def multiply(self, a, b):
        """Semiring multiplication ⊗."""
        raise NotImplementedError

    def add_all(self, items: Iterable):
        """Fold ⊕ over ``items`` (empty fold yields 0)."""
        result = self.zero()
        for item in items:
            result = self.add(result, item)
        return result

    def multiply_all(self, items: Iterable):
        """Fold ⊗ over ``items`` (empty fold yields 1)."""
        result = self.one()
        for item in items:
            result = self.multiply(result, item)
        return result

    def is_absorptive_on(self, samples: Iterable[tuple]) -> bool:
        """Check ``a ⊕ (a ⊗ b) == a`` on the given sample pairs."""
        return all(
            self.add(a, self.multiply(a, b)) == a for a, b in samples
        )

    def __repr__(self) -> str:
        return f"Semiring({self.name})"


class BooleanSemiring(Semiring):
    """({0,1}, ∨, ∧): plain query semantics. Absorptive."""

    name = "boolean"

    def zero(self):
        return False

    def one(self):
        return True

    def add(self, a, b):
        return a or b

    def multiply(self, a, b):
        return a and b


class CountingSemiring(Semiring):
    """(ℕ, +, ×): counts derivations (bag semantics). Not absorptive."""

    name = "counting"

    def zero(self):
        return 0

    def one(self):
        return 1

    def add(self, a, b):
        return a + b

    def multiply(self, a, b):
        return a * b


class TropicalSemiring(Semiring):
    """(ℝ∪{∞}, min, +): cheapest derivation cost. Absorptive for costs ≥ 0."""

    name = "tropical"
    INFINITY = float("inf")

    def zero(self):
        return self.INFINITY

    def one(self):
        return 0.0

    def add(self, a, b):
        return min(a, b)

    def multiply(self, a, b):
        return a + b


class ViterbiSemiring(Semiring):
    """([0,1], max, ×): most-probable derivation. Absorptive."""

    name = "viterbi"

    def zero(self):
        return 0.0

    def one(self):
        return 1.0

    def add(self, a, b):
        return max(a, b)

    def multiply(self, a, b):
        return a * b


class FuzzySemiring(Semiring):
    """([0,1], max, min): fuzzy membership. Absorptive."""

    name = "fuzzy"

    def zero(self):
        return 0.0

    def one(self):
        return 1.0

    def add(self, a, b):
        return max(a, b)

    def multiply(self, a, b):
        return min(a, b)


@dataclass(frozen=True, order=True)
class Clearance:
    """A security clearance level (smaller rank = more public)."""

    rank: int
    label: str

    def __repr__(self) -> str:
        return self.label


PUBLIC = Clearance(0, "public")
CONFIDENTIAL = Clearance(1, "confidential")
SECRET = Clearance(2, "secret")
TOP_SECRET = Clearance(3, "top-secret")
NEVER = Clearance(4, "never")

CLEARANCES = (PUBLIC, CONFIDENTIAL, SECRET, TOP_SECRET, NEVER)


class SecuritySemiring(Semiring):
    """Access-control semiring: min-rank over derivations, max within one.

    The canonical example of an absorptive semiring in the provenance
    literature (Foster–Green–Tannen).
    """

    name = "security"

    def zero(self):
        return NEVER

    def one(self):
        return PUBLIC

    def add(self, a, b):
        return min(a, b)

    def multiply(self, a, b):
        return max(a, b)


class WhySemiring(Semiring):
    """Why-provenance: sets of witness fact-sets, union / pairwise-union.

    Elements are frozensets of frozensets of fact tokens. Idempotent but not
    absorptive (a superset witness is retained alongside a subset witness).
    """

    name = "why"

    def zero(self):
        return frozenset()

    def one(self):
        return frozenset({frozenset()})

    def add(self, a, b):
        return a | b

    def multiply(self, a, b):
        return frozenset(x | y for x in a for y in b)


class PosBoolSemiring(Semiring):
    """PosBool(X): positive Boolean functions as minimal monomial antichains.

    Elements are frozensets of frozensets of variable tokens, kept minimal
    under absorption (no monomial contains another). The free *absorptive*
    semiring — the most informative provenance our circuits compute exactly.
    """

    name = "posbool"

    def zero(self):
        return frozenset()

    def one(self):
        return frozenset({frozenset()})

    @staticmethod
    def _minimize(monomials: frozenset) -> frozenset:
        return frozenset(
            m for m in monomials if not any(other < m for other in monomials)
        )

    def add(self, a, b):
        return self._minimize(a | b)

    def multiply(self, a, b):
        return self._minimize(frozenset(x | y for x in a for y in b))

    def variable(self, token) -> frozenset:
        """The element representing a single variable token."""
        return frozenset({frozenset({token})})


class PolynomialSemiring(Semiring):
    """ℕ[X]: provenance polynomials, the free commutative semiring.

    Elements are mappings monomial → coefficient, encoded as frozensets of
    ``(monomial, coefficient)`` pairs where a monomial is a frozenset of
    ``(token, exponent)`` pairs. The most general provenance; **not**
    absorptive, hence not guaranteed to match our circuits (documented
    limitation; verified negatively in tests).
    """

    name = "polynomial"

    def zero(self):
        return frozenset()

    def one(self):
        return frozenset({(frozenset(), 1)})

    @staticmethod
    def _to_dict(element) -> dict:
        return {monomial: coefficient for monomial, coefficient in element}

    @staticmethod
    def _from_dict(d: dict) -> frozenset:
        return frozenset((m, c) for m, c in d.items() if c != 0)

    def add(self, a, b):
        total = self._to_dict(a)
        for monomial, coefficient in b:
            total[monomial] = total.get(monomial, 0) + coefficient
        return self._from_dict(total)

    def multiply(self, a, b):
        product: dict = {}
        for m1, c1 in a:
            d1 = dict(m1)
            for m2, c2 in b:
                combined = dict(d1)
                for token, exponent in m2:
                    combined[token] = combined.get(token, 0) + exponent
                key = frozenset(combined.items())
                product[key] = product.get(key, 0) + c1 * c2
        return self._from_dict(product)

    def variable(self, token) -> frozenset:
        """The polynomial consisting of the single variable ``token``."""
        return frozenset({(frozenset({(token, 1)}), 1)})


ABSORPTIVE_SEMIRINGS = (
    BooleanSemiring(),
    TropicalSemiring(),
    ViterbiSemiring(),
    FuzzySemiring(),
    SecuritySemiring(),
    PosBoolSemiring(),
)

NON_ABSORPTIVE_SEMIRINGS = (
    CountingSemiring(),
    WhySemiring(),
    PolynomialSemiring(),
)
