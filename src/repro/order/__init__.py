"""Order uncertainty: po-relations, algebra, linear extensions (S10)."""

from repro.order.algebra import (
    concat,
    interleavings,
    product_direct,
    product_lex,
    projection,
    selection,
    union,
)
from repro.order.linear_extensions import (
    count_linear_extensions,
    extension_labels,
    is_linear_extension,
    iter_linear_extensions,
    possible_worlds,
    sample_linear_extension,
)
from repro.order.membership import (
    certain_pairs,
    is_possible_world,
    membership_backtracking,
)
from repro.order.numeric import (
    is_realizable_order,
    order_probability,
    poset_from_intervals,
    sample_order,
)
from repro.order.posets import LabeledPoset, antichain, chain
from repro.order.probability import (
    count_realizations,
    most_probable_worlds,
    pair_order_probability,
    world_probability,
)
from repro.order.series_parallel import (
    NotSeriesParallel,
    count_linear_extensions_sp,
    is_series_parallel,
)

__all__ = [
    "LabeledPoset",
    "NotSeriesParallel",
    "antichain",
    "certain_pairs",
    "chain",
    "concat",
    "count_linear_extensions",
    "count_linear_extensions_sp",
    "count_realizations",
    "most_probable_worlds",
    "pair_order_probability",
    "world_probability",
    "extension_labels",
    "interleavings",
    "is_linear_extension",
    "is_possible_world",
    "is_realizable_order",
    "is_series_parallel",
    "iter_linear_extensions",
    "membership_backtracking",
    "order_probability",
    "poset_from_intervals",
    "possible_worlds",
    "product_direct",
    "product_lex",
    "projection",
    "sample_linear_extension",
    "sample_order",
    "selection",
    "union",
]
