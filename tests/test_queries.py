"""Tests for CQs, UCQs, safe plans and Datalog."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.instances import ColumnarInstance, Instance, TIDInstance, fact
from repro.queries import (
    DatalogProgram,
    DatalogRule,
    UnsafeQueryError,
    atom,
    cq,
    is_hierarchical,
    is_safe,
    safe_plan_probability,
    ucq,
    variables,
)
from repro.baselines import tid_probability_enumerate
from repro.util import ReproError

X, Y, Z = variables("x", "y", "z")


class TestCQEvaluation:
    def test_single_atom_match(self):
        q = cq(atom("R", X))
        assert q.holds_in(Instance([fact("R", 1)]))
        assert not q.holds_in(Instance([fact("S", 1)]))

    def test_join_requires_shared_value(self):
        q = cq(atom("R", X), atom("S", X, Y), atom("T", Y))
        good = Instance([fact("R", 1), fact("S", 1, 2), fact("T", 2)])
        bad = Instance([fact("R", 1), fact("S", 3, 2), fact("T", 2)])
        assert q.holds_in(good)
        assert not q.holds_in(bad)

    def test_constants_in_atoms(self):
        q = cq(atom("S", "paris", Y))
        assert q.holds_in(Instance([fact("S", "paris", "lyon")]))
        assert not q.holds_in(Instance([fact("S", "rome", "lyon")]))

    def test_repeated_variable_in_atom(self):
        q = cq(atom("E", X, X))
        assert q.holds_in(Instance([fact("E", 1, 1)]))
        assert not q.holds_in(Instance([fact("E", 1, 2)]))

    def test_homomorphism_count(self):
        q = cq(atom("E", X, Y))
        inst = Instance([fact("E", 1, 2), fact("E", 2, 3)])
        assert len(list(q.homomorphisms(inst))) == 2

    def test_homomorphisms_can_merge_variables(self):
        q = cq(atom("E", X, Y), atom("E", Y, Z))
        inst = Instance([fact("E", 1, 1)])
        assert q.holds_in(inst)

    def test_witnesses_are_facts_of_instance(self):
        q = cq(atom("R", X), atom("S", X, Y))
        inst = Instance([fact("R", 1), fact("S", 1, 2)])
        witness = next(q.witnesses(inst))
        assert set(witness) == {fact("R", 1), fact("S", 1, 2)}

    def test_empty_query_rejected(self):
        with pytest.raises(ReproError):
            cq()

    def test_self_join_free(self):
        assert cq(atom("R", X), atom("S", X, Y)).is_self_join_free()
        assert not cq(atom("R", X), atom("R", Y)).is_self_join_free()


class TestUCQ:
    def test_union_semantics(self):
        q = ucq(cq(atom("R", X)), cq(atom("S", X)))
        assert q.holds_in(Instance([fact("S", 1)]))
        assert not q.holds_in(Instance([fact("T", 1)]))

    def test_variables_union(self):
        q = ucq(cq(atom("R", X)), cq(atom("S", Y)))
        assert q.variables() == {X, Y}


class TestHierarchy:
    def test_rst_not_hierarchical(self):
        q = cq(atom("R", X), atom("S", X, Y), atom("T", Y))
        assert not is_hierarchical(q)
        assert not is_safe(q)

    def test_star_query_hierarchical(self):
        q = cq(atom("R", X), atom("S", X, Y))
        assert is_hierarchical(q)
        assert is_safe(q)

    def test_self_join_makes_unsafe(self):
        q = cq(atom("R", X), atom("R", Y))
        assert not is_safe(q)


class TestSafePlans:
    def test_single_atom_probability(self):
        tid = TIDInstance({fact("R", 1): 0.3, fact("R", 2): 0.6})
        q = cq(atom("R", X))
        expected = 1 - 0.7 * 0.4
        assert math.isclose(safe_plan_probability(q, tid), expected)

    def test_product_of_components(self):
        tid = TIDInstance({fact("R", 1): 0.5, fact("T", 2): 0.5})
        q = cq(atom("R", X), atom("T", Y))
        assert math.isclose(safe_plan_probability(q, tid), 0.25)

    def test_hierarchical_join(self):
        tid = TIDInstance(
            {
                fact("R", 1): 0.5,
                fact("S", 1, "a"): 0.5,
                fact("S", 1, "b"): 0.5,
                fact("R", 2): 0.2,
                fact("S", 2, "a"): 0.9,
            }
        )
        q = cq(atom("R", X), atom("S", X, Y))
        expected = tid_probability_enumerate(q, tid)
        assert math.isclose(safe_plan_probability(q, tid), expected)

    def test_unsafe_query_raises(self):
        tid = TIDInstance({fact("R", 1): 0.5, fact("S", 1, 2): 0.5, fact("T", 2): 0.5})
        q = cq(atom("R", X), atom("S", X, Y), atom("T", Y))
        with pytest.raises(UnsafeQueryError):
            safe_plan_probability(q, tid)

    @pytest.mark.parametrize("seed", range(8))
    def test_safe_plan_matches_enumeration(self, seed):
        import random

        rng = random.Random(seed)
        tid = TIDInstance()
        for i in range(rng.randint(1, 3)):
            tid.add(fact("R", i), round(rng.uniform(0.1, 0.9), 2))
            for j in range(rng.randint(0, 2)):
                tid.add(fact("S", i, f"v{j}"), round(rng.uniform(0.1, 0.9), 2))
        q = cq(atom("R", X), atom("S", X, Y))
        assert math.isclose(
            safe_plan_probability(q, tid),
            tid_probability_enumerate(q, tid),
            abs_tol=1e-9,
        )


class TestDatalog:
    def test_transitive_closure(self):
        program = DatalogProgram(
            [
                DatalogRule(atom("Reach", X, Y), (atom("E", X, Y),)),
                DatalogRule(atom("Reach", X, Z), (atom("Reach", X, Y), atom("E", Y, Z))),
            ]
        )
        inst = Instance([fact("E", 1, 2), fact("E", 2, 3), fact("E", 3, 4)])
        result = program.fixpoint(inst)
        assert fact("Reach", 1, 4) in result
        assert fact("Reach", 4, 1) not in result

    def test_unsafe_rule_rejected(self):
        with pytest.raises(ReproError, match="safe Datalog"):
            DatalogRule(atom("P", X, Y), (atom("R", X),))

    def test_fixpoint_is_minimal(self):
        program = DatalogProgram([DatalogRule(atom("P", X), (atom("R", X),))])
        result = program.fixpoint(Instance([fact("R", 1)]))
        assert set(result.facts()) == {fact("R", 1), fact("P", 1)}

    def test_idb_relations(self):
        program = DatalogProgram([DatalogRule(atom("P", X), (atom("R", X),))])
        assert program.idb_relations() == {"P"}

    def test_cyclic_derivations_terminate(self):
        program = DatalogProgram(
            [
                DatalogRule(atom("Even", X), (atom("Zero", X),)),
                DatalogRule(atom("Even", Y), (atom("Even", X), atom("Next2", X, Y))),
            ]
        )
        inst = Instance(
            [fact("Zero", 0)] + [fact("Next2", i, (i + 2) % 10) for i in range(0, 10, 2)]
        )
        result = program.fixpoint(inst)
        assert all(fact("Even", i) in result for i in range(0, 10, 2))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_cq_evaluation_matches_witness_existence(seed):
    import random

    rng = random.Random(seed)
    inst = Instance()
    n = rng.randint(1, 5)
    for i in range(n):
        if rng.random() < 0.7:
            inst.add(fact("R", i))
        if rng.random() < 0.7:
            inst.add(fact("T", i))
    for _ in range(rng.randint(0, 2 * n)):
        inst.add(fact("S", rng.randrange(n), rng.randrange(n)))
    q = cq(atom("R", X), atom("S", X, Y), atom("T", Y))
    assert q.holds_in(inst) == (next(q.witnesses(inst), None) is not None)


class TestColumnarEvaluation:
    """The columnar joins must reproduce the object backtracking order."""

    def both(self):
        obj, col = Instance(), ColumnarInstance()
        for f in (
            fact("R", 0), fact("R", 2),
            fact("S", 0, 1), fact("S", 1, 1), fact("S", 2, 0), fact("S", 1, 2),
            fact("T", 1), fact("T", 2),
        ):
            obj.add(f)
            col.add(f)
        return obj, col

    @pytest.mark.parametrize(
        "q",
        [
            cq(atom("R", X), atom("S", X, Y), atom("T", Y)),
            cq(atom("S", X, Y), atom("S", Y, Z)),   # self-join
            cq(atom("S", X, X)),                    # repeated variable
            cq(atom("R", 0), atom("S", 0, Y)),      # constants
            cq(atom("R", X), atom("R", X)),         # duplicate atom
        ],
        ids=["rst", "self-join", "repeated-var", "constants", "dup-atom"],
    )
    def test_homomorphism_order_matches_object(self, q):
        obj, col = self.both()
        assert list(q.homomorphisms(col)) == list(q.homomorphisms(obj))

    def test_holds_in_agrees(self):
        obj, col = self.both()
        q = cq(atom("R", X), atom("S", X, Y), atom("T", Y))
        assert q.holds_in(col) == q.holds_in(obj) is True
        empty = cq(atom("U", X))
        assert empty.holds_in(col) == empty.holds_in(obj) is False

    def test_ucq_agrees(self):
        obj, col = self.both()
        q = ucq(cq(atom("U", X)), cq(atom("S", X, X)))
        assert q.holds_in(col) == q.holds_in(obj) is True
