"""Tests for conditioning and crowd question selection."""

import math

import pytest

from repro.conditioning import (
    ConditionedInstance,
    SimulatedCrowd,
    binary_entropy,
    choose_question_greedy,
    run_crowd_session,
)
from repro.events import var
from repro.instances import PCInstance, fact, pcc_from_pc
from repro.queries import atom, cq, variables
from repro.util import ReproError
from repro.workloads import TRIP_CDG_MEL, TRIP_MEL_PDX, table1_pc_instance

X, Y = variables("x", "y")


def trips_pcc():
    return pcc_from_pc(table1_pc_instance(p_pods=0.7, p_stoc=0.5))


class TestEventConditioning:
    def test_literal_conditioning_pins_fact(self):
        conditioned = ConditionedInstance(trips_pcc()).observe_event("pods", True)
        assert math.isclose(conditioned.fact_probability(TRIP_CDG_MEL), 1.0)

    def test_literal_conditioning_keeps_independents(self):
        conditioned = ConditionedInstance(trips_pcc()).observe_event("pods", True)
        assert math.isclose(conditioned.fact_probability(TRIP_MEL_PDX), 0.5)

    def test_evidence_probability(self):
        conditioned = ConditionedInstance(trips_pcc()).observe_event("pods", False)
        assert math.isclose(conditioned.evidence_probability(), 0.3)

    def test_unknown_event_rejected(self):
        with pytest.raises(ReproError, match="unknown event"):
            ConditionedInstance(trips_pcc()).observe_event("icdt", True)

    def test_matches_bayes_by_enumeration(self):
        pcc = trips_pcc()
        conditioned = ConditionedInstance(pcc).observe_event("stoc", True)
        # P(MEL→PDX | stoc) = P(pods ∧ stoc | stoc) = P(pods) = 0.7
        assert math.isclose(conditioned.fact_probability(TRIP_MEL_PDX), 0.7)


class TestFactConditioning:
    def test_observe_fact_present(self):
        pcc = trips_pcc()
        conditioned = ConditionedInstance(pcc).observe_fact(TRIP_MEL_PDX, True)
        # Observing pods∧stoc forces both events true.
        assert math.isclose(conditioned.fact_probability(TRIP_CDG_MEL), 1.0)

    def test_observe_fact_absent(self):
        pcc = trips_pcc()
        conditioned = ConditionedInstance(pcc).observe_fact(TRIP_CDG_MEL, False)
        # ¬pods: P(MEL→PDX)=0.
        assert math.isclose(conditioned.fact_probability(TRIP_MEL_PDX), 0.0)

    def test_zero_probability_observation_raises(self):
        pc = PCInstance()
        pc.add_event("e", 1.0)
        pc.add(fact("R", 1), var("e"))
        pcc = pcc_from_pc(pc)
        conditioned = ConditionedInstance(pcc).observe_fact(fact("R", 1), False)
        with pytest.raises(ReproError, match="zero-probability"):
            conditioned.fact_probability(fact("R", 1))

    def test_accumulated_observations(self):
        pcc = trips_pcc()
        conditioned = (
            ConditionedInstance(pcc)
            .observe_event("pods", True)
            .observe_event("stoc", False)
        )
        # The only surviving world keeps CDG→MEL and MEL→CDG.
        assert math.isclose(conditioned.evidence_probability(), 0.7 * 0.5)
        assert math.isclose(conditioned.fact_probability(TRIP_MEL_PDX), 0.0)


class TestQueryConditioning:
    def test_observe_query_true(self):
        pcc = trips_pcc()
        q = cq(atom("Trip", "Melbourne MEL", Y))  # some flight out of MEL
        conditioned = ConditionedInstance(pcc).observe_query(q, holds=True)
        # q ≡ pods (MEL→CDG or MEL→PDX both require pods; given pods one of
        # them always exists since they cover stoc and ¬stoc).
        assert math.isclose(conditioned.evidence_probability(), 0.7)

    def test_observe_query_false(self):
        pcc = trips_pcc()
        q = cq(atom("Trip", "Melbourne MEL", Y))
        conditioned = ConditionedInstance(pcc).observe_query(q, holds=False)
        assert math.isclose(conditioned.evidence_probability(), 0.3)
        assert math.isclose(conditioned.fact_probability(TRIP_CDG_MEL), 0.0)

    def test_query_probability_conditional(self):
        pcc = trips_pcc()
        q_out = cq(atom("Trip", "Paris CDG", Y))
        conditioned = ConditionedInstance(pcc).observe_event("pods", False)
        # Without pods, CDG flights need stoc: P = 0.5.
        assert math.isclose(conditioned.query_probability(q_out), 0.5)


class TestEntropyAndCrowd:
    def test_binary_entropy_bounds(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert math.isclose(binary_entropy(0.5), 1.0)

    def test_crowd_truthful_answers(self):
        crowd = SimulatedCrowd({"pods": True}, error_rate=0.0)
        assert crowd.ask("pods") is True
        assert crowd.questions_asked == 1

    def test_crowd_error_rate(self):
        crowd = SimulatedCrowd({"e": True}, error_rate=0.3, seed=0)
        answers = [crowd.ask("e") for _ in range(2000)]
        wrong = sum(1 for a in answers if not a)
        assert abs(wrong / 2000 - 0.3) < 0.05

    def test_crowd_error_rate_bounds(self):
        with pytest.raises(ReproError):
            SimulatedCrowd({"e": True}, error_rate=0.6)

    def test_greedy_prefers_informative_question(self):
        # Query depends only on pods, so asking pods kills all entropy.
        pcc = trips_pcc()
        q = cq(atom("Trip", "Paris CDG", "Melbourne MEL"))
        conditioned = ConditionedInstance(pcc)
        best = choose_question_greedy(conditioned, q, ["pods", "stoc"])
        assert best == "pods"

    def test_session_reduces_entropy(self):
        pcc = trips_pcc()
        q = cq(atom("Trip", "Paris CDG", Y))
        crowd = SimulatedCrowd({"pods": True, "stoc": False}, error_rate=0.0)
        session = run_crowd_session(pcc, q, crowd, budget=2, policy="greedy")
        entropies = session.entropies()
        assert entropies[-1] <= entropies[0]
        assert session.final_probability in (0.0, 1.0)

    def test_greedy_no_worse_than_random_on_average(self):
        pcc = trips_pcc()
        q = cq(atom("Trip", "Paris CDG", "Melbourne MEL"))

        def first_step_entropy(policy: str, seed: int) -> float:
            crowd = SimulatedCrowd({"pods": True, "stoc": False}, seed=seed)
            session = run_crowd_session(
                pcc, q, crowd, budget=1, policy=policy, seed=seed
            )
            return session.entropies()[-1]

        greedy = sum(first_step_entropy("greedy", s) for s in range(6)) / 6
        rand = sum(first_step_entropy("random", s) for s in range(6)) / 6
        assert greedy <= rand + 1e-9
