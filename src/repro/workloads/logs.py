"""Log-integration workloads for order uncertainty (paper Section 3).

The paper motivates order uncertainty with "integrating logged events from
different machines or files, where the log entries are sequentially ordered
but do not mention a global timestamp" (fetchmail, dmesg). We generate k
totally ordered logs over a shared event vocabulary; their union is a
po-relation whose possible worlds are the admissible global interleavings.

:class:`StreamingLogMonitor` is the *incremental* face of the same story:
log facts arrive in batches on one shared circuit arena and the standing
alarm query is re-compiled after every batch with
:func:`repro.circuits.recompile`, exercising the delta-recompilation fast
path end to end (the E17 compile-path benchmark grows its workload through
this class).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits import Circuit, CompiledCircuit, compile_circuit, recompile
from repro.order.algebra import union
from repro.order.posets import LabeledPoset, chain
from repro.util import check, stable_rng

EVENT_KINDS = (
    "connect",
    "auth",
    "fetch",
    "write",
    "flush",
    "disconnect",
    "retry",
    "error",
)


@dataclass
class LogWorkload:
    """Generated logs plus their merged po-relation."""

    logs: list[list[str]]
    merged: LabeledPoset


def generate_logs(
    machines: int, events_per_log: int, seed: int = 0, shared_vocabulary: bool = True
) -> LogWorkload:
    """Generate per-machine ordered logs and their parallel merge.

    With ``shared_vocabulary`` the same event kind can appear in several logs
    (duplicate labels — the hard membership regime); otherwise labels are
    made machine-unique (the tractable distinct-label regime).
    """
    check(machines >= 1 and events_per_log >= 1, "need at least one log entry")
    rng = stable_rng(seed)
    logs: list[list[str]] = []
    for m in range(machines):
        entries = []
        for i in range(events_per_log):
            kind = EVENT_KINDS[rng.randrange(len(EVENT_KINDS))]
            entries.append(kind if shared_vocabulary else f"m{m}:{kind}:{i}")
        logs.append(entries)
    merged = chain(logs[0], prefix="m0_")
    for m, entries in enumerate(logs[1:], start=1):
        merged = union(merged, chain(entries, prefix=f"m{m}_"))
    return LogWorkload(logs=logs, merged=merged)


class StreamingLogMonitor:
    """A standing alarm query over log facts streamed onto one shared arena.

    Each appended fact is an uncertain log event (a circuit variable): the
    event may or may not have really happened on its machine. The monitor
    keeps a cumulative alarm — "some batch contained an ``error`` event on a
    machine that logged no ``flush`` in that batch" — as a circuit output
    that is *extended*, never rewritten, when a batch arrives:

        output_t = OR(output_{t-1}, batch_alert_t)

    Because every batch only appends gates and keeps the previous output
    inside the new output's cone, :meth:`requery` recompiles in time
    proportional to the batch, not the whole history, via
    :func:`repro.circuits.recompile`.
    """

    def __init__(self, machines: int = 8, seed: int = 0) -> None:
        check(machines >= 1, "need at least one machine")
        self.machines = machines
        self.circuit = Circuit()
        self.event_names: list[str] = []
        self._rng = stable_rng(seed)
        self._next_event = 0
        self._compiled: CompiledCircuit | None = None

    def append(self, count: int) -> int:
        """Append ``count`` new log-event facts as one batch; returns them.

        Events are dealt round-robin across machines with kinds drawn from
        :data:`EVENT_KINDS`; the batch's alert condition is OR-ed into the
        standing output. The arena only grows.
        """
        check(count >= 1, "need at least one event per batch")
        circuit = self.circuit
        batch: list[tuple[int, str]] = []
        names: list[str] = []
        for offset in range(count):
            machine = (self._next_event + offset) % self.machines
            kind = EVENT_KINDS[self._rng.randrange(len(EVENT_KINDS))]
            names.append(f"m{machine}:e{self._next_event + offset}:{kind}")
            batch.append((machine, kind))
        # One bulk leaf append for the whole batch (names are fresh by
        # construction, so this never consults the hash-consing table).
        batch_vars = circuit.append_variables(names)
        self.event_names.extend(names)
        new_vars: dict[int, list[int]] = {}
        error_vars: dict[int, list[int]] = {}
        flush_vars: dict[int, list[int]] = {}
        for var, (machine, kind) in zip(batch_vars, batch):
            new_vars.setdefault(machine, []).append(var)
            if kind == "error":
                error_vars.setdefault(machine, []).append(var)
            elif kind == "flush":
                flush_vars.setdefault(machine, []).append(var)
        self._next_event += count
        alerts: list[int] = []
        for machine, errors in sorted(error_vars.items()):
            unflushed = circuit.negation(
                circuit.or_gate(flush_vars.get(machine, []))
            ) if flush_vars.get(machine) else circuit.true()
            alerts.append(
                circuit.and_gate([
                    circuit.or_gate(new_vars[machine]),
                    circuit.or_gate(errors),
                    unflushed,
                ])
            )
        batch_alert = circuit.or_gate(alerts) if alerts else circuit.false()
        if circuit.output is None:
            circuit.set_output(batch_alert)
        else:
            circuit.set_output(circuit.or_gate([circuit.output, batch_alert]))
        return count

    def requery(self) -> CompiledCircuit:
        """Re-lower the standing query, reusing the previous compile's work.

        The first call is a cold :func:`compile_circuit`; every later call
        goes through :func:`recompile` against the previous result so only
        the most recent batch's cone is lowered.
        """
        check(self.circuit.output is not None, "append at least one batch first")
        if self._compiled is None:
            self._compiled = compile_circuit(self.circuit)
        else:
            self._compiled = recompile(self._compiled, self.circuit)
        return self._compiled

    @property
    def compiled(self) -> CompiledCircuit | None:
        """The most recent :meth:`requery` result (``None`` before the first)."""
        return self._compiled

    def sample_world(self, probability: float = 0.5, seed: int = 0) -> dict[str, bool]:
        """One random truth assignment for every event fact appended so far."""
        rng = stable_rng(seed)
        return {name: rng.random() < probability for name in self.event_names}


def true_interleaving(workload: LogWorkload, seed: int = 0) -> tuple[str, ...]:
    """A ground-truth global order consistent with all logs (for testing)."""
    rng = stable_rng(seed)
    positions = [0] * len(workload.logs)
    result: list[str] = []
    total = sum(len(log) for log in workload.logs)
    while len(result) < total:
        candidates = [
            m for m, log in enumerate(workload.logs) if positions[m] < len(log)
        ]
        m = candidates[rng.randrange(len(candidates))]
        result.append(workload.logs[m][positions[m]])
        positions[m] += 1
    return tuple(result)
