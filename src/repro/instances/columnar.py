"""U-relation-style columnar instances: dictionary-encoded int32 columns.

Antova et al.'s *U-relations* observe that uncertain-relational processing
becomes cheap once instances are stored as flat columns a conventional
engine can scan. This backend mirrors that design (and the CSR layout of
the compiled circuit backend): every relation is a set of parallel int32
arrays — one per attribute position, dictionary-encoded against a shared
constant dictionary — plus a fact-id column that doubles as the variable
slot of the fact's presence variable in lineage circuits.

The representation is lossless with respect to the object backend
(:func:`ColumnarInstance.to_instance` / :func:`from_instance` round-trip
exactly, preserving insertion order), but bulk loads and vectorized query
evaluation never touch per-fact Python objects: generators append encoded
column batches, the join planner reads the raw columns, and the provenance
builder turns witness fact ids straight into circuit leaves.

Columns are stored as stdlib ``array("i")`` buffers so the backend works
without numpy; when numpy is importable the vectorized paths reinterpret
the same buffers zero-copy via ``np.frombuffer`` (the trick the compiled
lowering uses).

The module also owns the backend knob: ``REPRO_INSTANCE_BACKEND`` (or
:func:`set_instance_backend`) selects which backend
:func:`make_instance` — and therefore the TID/c/pcc wrappers and the
workload generators — construct by default.
"""

from __future__ import annotations

import os
from array import array
from collections.abc import Iterable, Sequence

from repro.instances.base import (
    AbstractInstance,
    Constant,
    Fact,
    Instance,
    variable_name_of,
)
from repro.util import ReproError, check

try:  # capability check: vectorized bulk loads and joins need numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None


def columnar_numpy():
    """The numpy module the columnar paths use, or ``None`` without numpy."""
    return _np


# Codes are int32, so a pair of codes packs collision-free into an int64.
_PACK = 1 << 31

# The platform guarantees from circuit.py hold here too (checked there).


def _pack_rows(columns: Sequence, length: int):
    """Pack one encoded row per index into a hashable key (vectorized).

    Arity 0 → zeros, arity 1 → the code itself, arity 2 → ``a * 2^31 + b``
    (exact in int64); the fold matches :meth:`ColumnarInstance.add_fact`
    exactly so bulk and single-fact inserts share one dedup index. Arities
    above 2 overflow int64 under this fold, so they take the unbounded
    Python-int path regardless of numpy.
    """
    if _np is not None and len(columns) <= 2:
        if not columns:
            return _np.zeros(length, dtype=_np.int64)
        key = _np.asarray(columns[0], dtype=_np.int64)
        for col in columns[1:]:
            key = key * _PACK + _np.asarray(col, dtype=_np.int64)
        return key
    if not columns:
        return [0] * length
    keys = [int(c) for c in columns[0]]
    for col in columns[1:]:
        keys = [k * _PACK + int(c) for k, c in zip(keys, col)]
    return keys


class _RelationColumns:
    """The column family of one relation."""

    __slots__ = ("arity", "columns", "fact_ids", "_key_to_fid")

    def __init__(self, arity: int):
        self.arity = arity
        self.columns: list[array] = [array("i") for _ in range(arity)]
        self.fact_ids = array("i")
        # Packed row key → global fact id; the set-semantics index.
        # ``None`` means "not built": bulk loads drop it rather than pay
        # a per-row dict insert, and the property rebuilds it from the
        # columns on the first keyed lookup.
        self._key_to_fid: dict | None = {}

    @property
    def key_to_fid(self) -> dict:
        index = self._key_to_fid
        if index is None:
            keys = _pack_rows(self.columns, len(self.fact_ids))
            if hasattr(keys, "tolist"):
                keys = keys.tolist()
            index = dict(zip(keys, self.fact_ids))
            self._key_to_fid = index
        return index

    def __len__(self) -> int:
        return len(self.fact_ids)


class ColumnarInstance(AbstractInstance):
    """Dictionary-encoded columnar instance (the U-relation backend).

    Drop-in for :class:`repro.instances.base.Instance` everywhere the
    shared protocol is used; additionally exposes bulk encoded loads and
    raw column access for the vectorized query/provenance pipeline.

    >>> inst = ColumnarInstance()
    >>> _ = inst.add(Fact("R", (1,)))
    >>> Fact("R", (1,)) in inst
    True
    """

    def __init__(self, facts: Iterable[Fact] = ()):
        # Shared dictionary. Ints in [0, _int_prefix) encode as themselves
        # (the bulk-generator fast path); everything else goes through the
        # dict, with codes offset past the prefix.
        self._int_prefix = 0
        self._dict_constants: list[Constant] = []
        self._code_of: dict = {}
        self._rels: dict[str, _RelationColumns] = {}
        self._rel_names: list[str] = []
        self._rel_index: dict[str, int] = {}
        # Global fact-id → (relation, row) locator, as two parallel arrays.
        self._fid_rel = array("i")
        self._fid_row = array("i")
        # Lazily extended code → str(decoded constant) table for bulk
        # circuit-leaf naming.
        self._strs: list[str] = []
        #: Count of Fact objects this instance has materialized — the E18
        #: bench asserts the columnar pipeline keeps this at zero.
        self.facts_materialized = 0
        for f in facts:
            self.add(f)

    # ------------------------------------------------------------------ #
    # the constant dictionary

    def intern_int_range(self, stop: int) -> None:
        """Ensure ints ``0..stop-1`` are interned as their own codes.

        O(1): only legal while the dictionary is untouched (fresh instance
        or prior prefix growth), which is exactly the bulk-generator case.
        """
        check(stop < _PACK, "int range exceeds the int32 code space")
        if stop <= self._int_prefix:
            return
        check(
            not self._code_of,
            "intern_int_range requires an untouched constant dictionary",
        )
        self._int_prefix = stop

    def intern(self, constant: Constant) -> int:
        """Return the code of ``constant``, interning it if new."""
        if type(constant) is int and 0 <= constant < self._int_prefix:
            return constant
        code = self._code_of.get(constant)
        if code is None:
            code = self._int_prefix + len(self._dict_constants)
            check(code < _PACK, "constant dictionary exceeds the int32 code space")
            self._dict_constants.append(constant)
            self._code_of[constant] = code
        return code

    def encode(self, constant: Constant) -> int | None:
        """Return the code of ``constant``, or ``None`` if never interned."""
        if type(constant) is int and 0 <= constant < self._int_prefix:
            return constant
        return self._code_of.get(constant)

    def decode(self, code: int) -> Constant:
        """Return the constant for ``code``."""
        if code < self._int_prefix:
            return code
        return self._dict_constants[code - self._int_prefix]

    def n_codes(self) -> int:
        """Number of interned constants."""
        return self._int_prefix + len(self._dict_constants)

    # ------------------------------------------------------------------ #
    # primitives of the shared protocol

    def _rel_columns(self, relation: str, arity: int) -> _RelationColumns:
        rel = self._rels.get(relation)
        if rel is None:
            rel = _RelationColumns(arity)
            self._rels[relation] = rel
            self._rel_index[relation] = len(self._rel_names)
            self._rel_names.append(relation)
        else:
            check(
                rel.arity == arity,
                f"relation {relation!r} used with two arities",
            )
        return rel

    def add(self, f: Fact) -> Fact:
        """Insert a fact (idempotent) and return it."""
        self.add_fact(f.relation, f.args)
        return f

    def add_fact(self, relation: str, args: tuple) -> int:
        """Insert ``relation(args...)`` and return its fact id (no Fact)."""
        rel = self._rel_columns(relation, len(args))
        codes = [self.intern(a) for a in args]
        key = 0
        for c in codes:
            key = key * _PACK + c
        fid = rel.key_to_fid.get(key)
        if fid is not None:
            return fid
        fid = len(self._fid_rel)
        rel.key_to_fid[key] = fid
        for col, c in zip(rel.columns, codes):
            col.append(c)
        rel.fact_ids.append(fid)
        self._fid_rel.append(self._rel_index[relation])
        self._fid_row.append(len(rel.fact_ids) - 1)
        return fid

    def fact_id_of(self, f: Fact) -> int | None:
        """Return the fact id of ``f``, or ``None`` if absent."""
        rel = self._rels.get(f.relation)
        if rel is None or rel.arity != len(f.args):
            return None
        key = 0
        for a in f.args:
            code = self.encode(a)
            if code is None:
                return None
            key = key * _PACK + code
        return rel.key_to_fid.get(key)

    def discard(self, f: Fact) -> None:
        """Remove a fact if present (rebuilds the relation's columns).

        O(instance) — the columnar backend is append-oriented; discard
        exists for protocol completeness, not for hot paths.
        """
        fid = self.fact_id_of(f)
        if fid is None:
            return
        count_before = self.facts_materialized
        survivors = [g for g in self.facts() if g != f]
        self.__init__(survivors)
        self.facts_materialized = count_before + len(survivors) + 1

    def __contains__(self, f: Fact) -> bool:
        return self.fact_id_of(f) is not None

    def __len__(self) -> int:
        return len(self._fid_rel)

    def fact_at(self, fid: int) -> Fact:
        """Materialize the Fact object with global id ``fid``."""
        relation = self._rel_names[self._fid_rel[fid]]
        rel = self._rels[relation]
        row = self._fid_row[fid]
        args = tuple(self.decode(col[row]) for col in rel.columns)
        self.facts_materialized += 1
        return Fact(relation, args)

    def facts(self) -> list[Fact]:
        """Materialize all facts, in insertion (fact-id) order."""
        return [self.fact_at(fid) for fid in range(len(self._fid_rel))]

    def relations(self) -> dict[str, int]:
        """Return the schema: relation name → arity (no materialization)."""
        return {name: self._rels[name].arity for name in self._rel_names}

    def by_relation(self, relation: str) -> list[Fact]:
        """Materialize the facts of one relation, in insertion order."""
        rel = self._rels.get(relation)
        if rel is None:
            return []
        return [self.fact_at(fid) for fid in rel.fact_ids]

    def key_index(self, relation: str, key_positions: Iterable[int]) -> dict[tuple, list[Fact]]:
        """Group the relation's facts into blocks by their key projection.

        Columnar override of the shared-protocol method: rows are grouped
        by their packed key codes (one vectorized :func:`_pack_rows` pass
        over the key columns instead of a per-fact tuple build), then each
        block materializes its facts.  Order-identical to the reference
        implementation on :class:`AbstractInstance`.
        """
        positions = tuple(key_positions)
        rel = self._rels.get(relation)
        if rel is None:
            return {}
        check(
            all(p < rel.arity for p in positions),
            f"key position out of range for {relation!r} (arity {rel.arity})",
        )
        n = len(rel.fact_ids)
        packed = _pack_rows([rel.columns[p] for p in positions], n)
        if hasattr(packed, "tolist"):
            packed = packed.tolist()
        groups: dict[int, list[int]] = {}
        for row, key in enumerate(packed):
            groups.setdefault(key, []).append(row)
        index: dict[tuple, list[Fact]] = {}
        for rows in groups.values():
            first = rows[0]
            key_tuple = tuple(self.decode(rel.columns[p][first]) for p in positions)
            index[key_tuple] = [self.fact_at(rel.fact_ids[r]) for r in rows]
        return index

    # ------------------------------------------------------------------ #
    # columnar accessors (the vectorized pipeline's surface)

    def relation_arrays(self, relation: str) -> tuple[list[array], array] | None:
        """Return ``(columns, fact_ids)`` raw buffers, or None if absent."""
        rel = self._rels.get(relation)
        if rel is None:
            return None
        return rel.columns, rel.fact_ids

    def variable_names_for(self, fids: Iterable[int]) -> list[str]:
        """Circuit-leaf names for fact ids, without materializing Facts.

        Follows :attr:`repro.instances.base.Fact.variable_name` exactly, so
        both backends agree on every leaf of every lineage circuit.
        """
        if _np is not None and isinstance(fids, _np.ndarray):
            return self._variable_names_bulk(fids)
        names = []
        rel_names = self._rel_names
        fid_rel = self._fid_rel
        fid_row = self._fid_row
        decode = self.decode
        for fid in fids:
            relation = rel_names[fid_rel[fid]]
            row = fid_row[fid]
            cols = self._rels[relation].columns
            names.append(
                variable_name_of(relation, (decode(col[row]) for col in cols))
            )
        return names

    def _code_strs(self) -> list[str]:
        """Decoded-constant strings per code, extended lazily as codes grow."""
        strs = self._strs
        n = self.n_codes()
        if len(strs) < n:
            decode = self.decode
            strs.extend(str(decode(c)) for c in range(len(strs), n))
        return strs

    def _variable_names_bulk(self, fids) -> list[str]:
        """The numpy path of :meth:`variable_names_for`.

        Sorts the requested fact ids (fid space is relation-blocked for
        bulk loads, so sorted fids form a handful of same-relation runs),
        gathers each run's code columns in one shot, formats names through
        the cached code→str table, and scatters them back to the callers'
        order with one object-array fancy assignment — no per-fact decode
        or Fact materialization.
        """
        n = fids.size
        if n == 0:
            return []
        order = _np.argsort(fids, kind="stable")
        sorted_fids = fids[order]
        rel_ids = _np.frombuffer(self._fid_rel, dtype=_np.int32)[sorted_fids]
        rows = _np.frombuffer(self._fid_row, dtype=_np.int32)[sorted_fids]
        strs = self._code_strs()
        run_starts = [0, *(_np.flatnonzero(_np.diff(rel_ids)) + 1).tolist(), n]
        if len(run_starts) - 2 > max(8, n >> 3):
            # Heavily interleaved fid space (per-fact add path): the run
            # machinery would pay per-run numpy overhead ~per fact.
            rel_names = self._rel_names
            fid_rel = self._fid_rel
            fid_row = self._fid_row
            rels = self._rels
            out_list = []
            for fid in fids.tolist():
                relation = rel_names[fid_rel[fid]]
                row = fid_row[fid]
                inside = ",".join(
                    [strs[col[row]] for col in rels[relation].columns]
                )
                out_list.append(f"f:{relation}({inside})")
            return out_list
        names: list[str] = []
        for start, stop in zip(run_starts, run_starts[1:]):
            relation = self._rel_names[rel_ids[start]]
            rel = self._rels[relation]
            run_rows = rows[start:stop]
            cols = [
                _np.frombuffer(col, dtype=_np.int32)[run_rows].tolist()
                for col in rel.columns
            ]
            if rel.arity == 1:
                names += [f"f:{relation}({strs[a]})" for a in cols[0]]
            elif rel.arity == 2:
                names += [
                    f"f:{relation}({strs[a]},{strs[b]})"
                    for a, b in zip(cols[0], cols[1])
                ]
            else:
                names += [
                    f"f:{relation}({','.join([strs[c] for c in row])})"
                    for row in zip(*cols)
                ]
        out = _np.empty(n, dtype=object)
        out[order] = names
        return out.tolist()

    # ------------------------------------------------------------------ #
    # bulk loads

    def extend_encoded(self, relation: str, columns: Sequence) -> "object":
        """Bulk-append encoded rows; returns the per-row fact ids.

        ``columns`` holds one int-sequence (list / array / numpy array) per
        attribute position, already encoded against this instance's
        dictionary (:meth:`intern`, :meth:`intern_int_range`,
        :meth:`intern_values`). Set semantics match :meth:`add`: duplicate
        rows — within the batch or against existing rows — map to the
        first occurrence's fact id. Returns an int array (numpy when
        available) aligned with the input rows.
        """
        lengths = {len(c) for c in columns}
        check(len(lengths) <= 1, "encoded columns must have equal lengths")
        length = lengths.pop() if lengths else 0
        rel = self._rel_columns(relation, len(columns))
        if length == 0:
            return _np.zeros(0, dtype=_np.int64) if _np is not None else array("i")
        keys = _pack_rows(columns, length)
        base_fid = len(self._fid_rel)
        base_row = len(rel.fact_ids)
        if _np is not None and len(columns) <= 2:
            uniq_keys, first_index = _np.unique(keys, return_index=True)
            fresh = first_index
            if base_row:
                index = rel._key_to_fid
                if index is not None:
                    known = _np.fromiter(
                        (k in index for k in uniq_keys.tolist()),
                        dtype=bool,
                        count=len(uniq_keys),
                    )
                else:
                    # Index not built: dedup against the existing rows'
                    # packed keys directly, keeping the load dict-free.
                    known = _np.isin(
                        uniq_keys, _pack_rows(rel.columns, base_row)
                    )
                fresh = first_index[~known]
            keep = _np.sort(fresh)  # batch-insertion order
            new_fids = base_fid + _np.arange(len(keep), dtype=_np.int64)
            for col, values in zip(rel.columns, columns):
                kept = _np.asarray(values, dtype=_np.int64)[keep]
                col.frombytes(kept.astype(_np.int32).tobytes())
            rel.fact_ids.frombytes(new_fids.astype(_np.int32).tobytes())
            index = rel._key_to_fid
            if index:
                # A built (non-empty) index stays coherent incrementally.
                index.update(zip(keys[keep].tolist(), new_fids.tolist()))
            else:
                # Fresh relation or already-lazy index: defer the dict to
                # the first keyed lookup instead of paying it per load.
                rel._key_to_fid = None
            self._fid_rel.frombytes(
                _np.full(len(keep), self._rel_index[relation], dtype=_np.int32)
                .tobytes()
            )
            self._fid_row.frombytes(
                (base_row + _np.arange(len(keep), dtype=_np.int32)).tobytes()
            )
            if len(keep) == length:
                return new_fids  # all rows fresh and unique: the common case
            return _np.fromiter(
                (rel.key_to_fid[k] for k in keys.tolist()),
                dtype=_np.int64,
                count=length,
            )
        # Python fallback: same semantics, scalar loop.
        fids = array("i")
        key_to_fid = rel.key_to_fid
        for i in range(length):
            key = keys[i]
            fid = key_to_fid.get(key)
            if fid is None:
                fid = len(self._fid_rel)
                key_to_fid[key] = fid
                for col, values in zip(rel.columns, columns):
                    col.append(int(values[i]))
                rel.fact_ids.append(fid)
                self._fid_rel.append(self._rel_index[relation])
                self._fid_row.append(len(rel.fact_ids) - 1)
            fids.append(fid)
        return fids

    def intern_values(self, values: Iterable[Constant]):
        """Intern arbitrary constants; returns their codes as an int array."""
        codes = array("i", (self.intern(v) for v in values))
        if _np is not None:
            return _np.frombuffer(codes, dtype=_np.int32).copy()
        return codes

    # ------------------------------------------------------------------ #
    # derived structure, column-native

    def _unique_codes_by_relation(self) -> dict[str, list]:
        out = {}
        for name in self._rel_names:
            rel = self._rels[name]
            if _np is not None:
                merged = (
                    _np.unique(
                        _np.concatenate(
                            [
                                _np.frombuffer(col, dtype=_np.int32)
                                for col in rel.columns
                            ]
                        )
                    ).tolist()
                    if rel.columns and len(rel.fact_ids)
                    else []
                )
            else:
                seen: set[int] = set()
                for col in rel.columns:
                    seen.update(col)
                merged = sorted(seen)
            out[name] = merged
        return out

    def domain(self) -> frozenset[Constant]:
        """Active domain from the columns — no Fact materialization."""
        decode = self.decode
        elements: set = set()
        for codes in self._unique_codes_by_relation().values():
            elements.update(decode(c) for c in codes)
        return frozenset(elements)

    def gaifman_graph(self):
        """Gaifman graph from unique column pairs — no Fact materialization."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.domain())
        decode = self.decode
        for name in self._rel_names:
            rel = self._rels[name]
            if len(rel.fact_ids) == 0:
                continue
            for i in range(rel.arity):
                for j in range(i + 1, rel.arity):
                    a_col, b_col = rel.columns[i], rel.columns[j]
                    if _np is not None:
                        a = _np.frombuffer(a_col, dtype=_np.int32).astype(_np.int64)
                        b = _np.frombuffer(b_col, dtype=_np.int32).astype(_np.int64)
                        packed = _np.unique(a * _PACK + b)
                        pairs = [
                            (int(p) >> 31, int(p) & (_PACK - 1))
                            for p in packed.tolist()
                        ]
                    else:
                        pairs = sorted({(x, y) for x, y in zip(a_col, b_col)})
                    for x, y in pairs:
                        if x != y:
                            graph.add_edge(decode(x), decode(y))
        return graph

    # ------------------------------------------------------------------ #
    # conversions

    def to_instance(self) -> Instance:
        """Materialize as an object-backend :class:`Instance` (lossless)."""
        return Instance(self.facts())

    @classmethod
    def from_instance(cls, instance: AbstractInstance) -> "ColumnarInstance":
        """Encode an object-backend instance column-wise (lossless)."""
        return cls(instance.facts())

    # ------------------------------------------------------------------ #
    # encoded wire payloads (the query-service ingest format)

    def to_payload(self) -> dict:
        """This instance as a JSON-friendly encoded payload.

        Carries the shared dictionary (int prefix + interned constants, in
        code order) and each relation's raw code columns — no Fact
        objects, no decoded rows — and round-trips exactly through
        :meth:`ingest_payload`. Constants must be JSON-representable
        (str/int/float/bool); anything else is rejected here rather than
        silently mangled by the serializer.
        """
        for constant in self._dict_constants:
            check(
                isinstance(constant, (str, int, float, bool)),
                f"constant {constant!r} is not JSON-representable",
            )
        return {
            "version": 1,
            "int_prefix": self._int_prefix,
            "constants": list(self._dict_constants),
            "relations": {
                name: [list(column) for column in self._rels[name].columns]
                for name in self._rel_names
            },
        }

    @classmethod
    def ingest_payload(cls, payload) -> tuple["ColumnarInstance", dict]:
        """Build an instance from an encoded payload (the service ingest).

        Returns ``(instance, fids_by_relation)`` where each relation maps
        to the per-row fact ids its columns produced, aligned with the
        payload's rows (duplicate rows get their first occurrence's id) —
        exactly what a caller needs to attach per-row probabilities to the
        resulting lineage variables (:meth:`variable_names_for`). The
        payload is untrusted wire input: shapes, code ranges, and
        dictionary consistency are all validated with clear errors.
        """
        check(isinstance(payload, dict), "instance payload must be an object")
        check(
            payload.get("version", 1) == 1,
            "unsupported instance payload version",
        )
        instance = cls()
        prefix = payload.get("int_prefix", 0)
        check(
            isinstance(prefix, int) and 0 <= prefix < _PACK,
            "'int_prefix' must be a non-negative int32",
        )
        instance.intern_int_range(prefix)
        constants = payload.get("constants", [])
        check(isinstance(constants, list), "'constants' must be a list")
        for position, constant in enumerate(constants):
            check(
                isinstance(constant, (str, int, float, bool)),
                f"constant {constant!r} is not JSON-representable",
            )
            code = instance.intern(constant)
            check(
                code == prefix + position,
                f"constant {constant!r} collides with an earlier code "
                "(duplicate dictionary entry or int-prefix overlap)",
            )
        relations = payload.get("relations", {})
        check(isinstance(relations, dict), "'relations' must be an object")
        n_codes = instance.n_codes()
        fids_by_relation: dict = {}
        for name, columns in relations.items():
            check(
                isinstance(name, str) and name,
                "relation names must be non-empty strings",
            )
            check(
                isinstance(columns, list)
                and all(isinstance(column, list) for column in columns),
                f"relation {name!r} must hold a list of code columns",
            )
            for column in columns:
                check(
                    all(
                        isinstance(code, int) and 0 <= code < n_codes
                        for code in column
                    ),
                    f"relation {name!r} has codes outside the dictionary",
                )
            fids = instance.extend_encoded(
                name, [array("i", column) for column in columns]
            )
            fids_by_relation[name] = [int(fid) for fid in fids]
        return instance, fids_by_relation


# --------------------------------------------------------------------------- #
# the backend knob

_BACKENDS = ("object", "columnar")
_BACKEND: str | None = None  # None → fall back to the environment


def instance_backend() -> str:
    """The process-wide default instance backend (``object``/``columnar``)."""
    if _BACKEND is not None:
        return _BACKEND
    name = os.environ.get("REPRO_INSTANCE_BACKEND", "object").strip() or "object"
    if name not in _BACKENDS:
        raise ReproError(
            f"REPRO_INSTANCE_BACKEND={name!r}; expected one of {_BACKENDS}"
        )
    return name


def set_instance_backend(name: str | None) -> None:
    """Override the default backend (``None`` → back to the environment)."""
    global _BACKEND
    check(
        name is None or name in _BACKENDS,
        f"unknown instance backend {name!r}; expected one of {_BACKENDS}",
    )
    _BACKEND = name


def instance_backend_set(name: str | None):
    """Scoped :func:`set_instance_backend` (restores the prior override).

    Thin shim over :func:`repro.config.overrides`.
    """
    from repro import config

    return config.overrides(instance_backend=name)


def make_instance(
    backend: str | None = None, facts: Iterable[Fact] = ()
) -> AbstractInstance:
    """Construct an instance of the requested (or default) backend."""
    name = backend if backend is not None else instance_backend()
    check(
        name in _BACKENDS,
        f"unknown instance backend {name!r}; expected one of {_BACKENDS}",
    )
    if name == "columnar":
        return ColumnarInstance(facts)
    return Instance(facts)
