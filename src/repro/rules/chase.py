"""The (restricted) chase for existential rules.

Deterministic substrate for the probabilistic chase: repeatedly find a
trigger (a homomorphism of a rule body into the instance) whose head is not
yet satisfied, and fire it, inventing fresh labeled nulls for existential
variables. Terminates on weakly acyclic rule sets; certain-answer reasoning
under hard rules (open-world query answering) evaluates queries over the
chased instance.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.instances.base import Fact, Instance
from repro.queries.cq import Atom, ConjunctiveQuery, Variable
from repro.rules.tgds import ExistentialRule
from repro.util import ReproError, check


class Null:
    """A labeled null: a fresh element invented by the chase."""

    _counter = 0

    def __init__(self, hint: str = "n"):
        Null._counter += 1
        self.name = f"_{hint}{Null._counter}"

    def __repr__(self) -> str:
        return self.name


def _head_satisfied(
    r: ExistentialRule, binding: dict[Variable, object], instance: Instance
) -> bool:
    """Whether the rule head already has a match extending the frontier binding."""
    frontier_binding = {
        v: value for v, value in binding.items() if v in r.frontier()
    }
    head_query = ConjunctiveQuery(
        tuple(
            Atom(
                a.relation,
                tuple(
                    frontier_binding.get(t, t) if isinstance(t, Variable) else t
                    for t in a.terms
                ),
            )
            for a in r.head
        )
    )
    return head_query.holds_in(instance)


def _fire(
    r: ExistentialRule, binding: dict[Variable, object], hint: str = "n"
) -> list[Fact]:
    """Instantiate the head with fresh nulls for existential variables."""
    extended = dict(binding)
    for v in r.existential_variables():
        extended[v] = Null(hint=v.name or hint)
    derived = []
    for a in r.head:
        args = tuple(
            extended[t] if isinstance(t, Variable) else t for t in a.terms
        )
        derived.append(Fact(a.relation, args))
    return derived


def chase(
    instance: Instance,
    rules: Iterable[ExistentialRule],
    max_rounds: int = 100,
) -> Instance:
    """Run the restricted chase to completion (or raise after ``max_rounds``).

    Returns a new instance containing the original facts plus all derived
    facts. Round-based: all triggers of a round are collected, then the
    unsatisfied ones fire.
    """
    rules = list(rules)
    result = Instance(instance.facts())
    for _round in range(max_rounds):
        fired_any = False
        for r in rules:
            body_query = ConjunctiveQuery(r.body)
            for binding in list(body_query.homomorphisms(result)):
                if _head_satisfied(r, binding, result):
                    continue
                for f in _fire(r, binding):
                    result.add(f)
                fired_any = True
        if not fired_any:
            return result
    raise ReproError(
        f"chase did not terminate within {max_rounds} rounds "
        "(is the rule set weakly acyclic?)"
    )


def certain_answer(
    query, instance: Instance, rules: Iterable[ExistentialRule], max_rounds: int = 100
) -> bool:
    """Open-world certain answering under hard rules: chase then evaluate.

    For CQs this is sound and complete (the chase is a universal model).
    """
    chased = chase(instance, rules, max_rounds)
    check(hasattr(query, "holds_in"), "query must support holds_in")
    return query.holds_in(chased)
