"""Cross-engine conformance matrix: one scenario corpus, every execution path.

The pipeline promises that *where* a batch executes never changes *what* it
computes: the scalar generated kernels, the array interpreter, the
level-scheduled numpy kernels, the multi-process shared-memory pool, and
the distributed TCP workers must all agree on every circuit shape we
support — including negation, shared subcircuits, and the empty/singleton
degenerate worlds that per-path test files historically each re-asserted in
their own ad-hoc way. This module replaces those scattered agreement
asserts with one parametrized matrix:

    scenario corpus  ×  plan producer  ×  {scalar, interpreter, numpy-batch,
                                           multiprocess, distributed,
                                           persistent-pool}

The *producer* axis pins how the compiled plan came to be: a fresh
:func:`compile_circuit`, a delta :func:`repro.circuits.recompile` after an
append edit, or a lowering rebuilt from the persistent on-disk plan cache.
Each producer asserts its arrays are bit-identical to a from-scratch
compile before the execution paths ever run, so a recompiled or
cache-loaded plan can never drift from the oracle unnoticed.

For Boolean evaluation the paths must agree **exactly**; for the
probability pass the scalar kernels may associate float operations
differently from the vectorized ones, so cross-backend rows use a 1e-12
tolerance while the vectorized tiers (numpy / pool / wire) are compared
bit-for-bit.

The multiprocess and distributed columns need numpy (and the distributed
ones real sockets, hence the ``distributed`` marker); the scalar columns run
everywhere, so the numpy-free CI job still covers the corpus. The
``persistent-pool`` column repeats its passes over the warm
:class:`~repro.circuits.distributed.HostPool` and additionally asserts the
second round reused the connection and skipped the plan transfer.
"""

import math
import tempfile

import pytest

from repro.circuits import Circuit, compile_circuit, recompile
from repro.circuits import compiled as compiled_module
from repro.circuits import distributed, parallel, plancache
from repro.events import EventSpace


# --------------------------------------------------------------------------- #
# the scenario corpus

def _negation_heavy() -> Circuit:
    c = Circuit()
    a, b, d = c.variable("a"), c.variable("b"), c.variable("d")
    inner = c.or_gate([c.negation(a), c.and_gate([b, c.negation(d)])])
    c.set_output(c.and_gate([c.negation(inner), c.or_gate([a, d])]))
    return c

def _shared_subcircuit() -> Circuit:
    # One AND gate feeding three parents: the DAG (not tree) case where a
    # naive per-path lowering could double-count the shared node.
    c = Circuit()
    x, y, z = c.variable("x"), c.variable("y"), c.variable("z")
    shared = c.and_gate([x, y])
    left = c.or_gate([shared, z])
    right = c.and_gate([shared, c.negation(z)])
    c.set_output(c.or_gate([left, right, shared]))
    return c

def _empty_world() -> Circuit:
    # No variables at all: the output folds entirely from constants.
    c = Circuit()
    c.set_output(c.or_gate([c.and_gate([c.true(), c.true()]), c.false()]))
    return c

def _singleton_world() -> Circuit:
    c = Circuit()
    c.set_output(c.negation(c.variable("only")))
    return c

def _wide_gates() -> Circuit:
    c = Circuit()
    vs = [c.variable(f"w{i}") for i in range(8)]
    c.set_output(c.or_gate([c.and_gate(vs[:5]), c.and_gate(vs[3:]), vs[7]]))
    return c

def _deep_chain() -> Circuit:
    c = Circuit()
    acc = c.variable("c0")
    for i in range(1, 7):
        v = c.variable(f"c{i}")
        acc = c.or_gate([c.and_gate([acc, v]), c.negation(acc)])
    c.set_output(acc)
    return c


SCENARIOS = {
    "negation": _negation_heavy,
    "shared-subcircuit": _shared_subcircuit,
    "empty-world": _empty_world,
    "singleton-world": _singleton_world,
    "wide-gates": _wide_gates,
    "deep-chain": _deep_chain,
}


# --------------------------------------------------------------------------- #
# plan producers: how the compiled object came to be

def _assert_identical_lowering(produced, fresh):
    """Pin a produced plan bit-identical to a from-scratch compile."""
    assert produced.kinds == fresh.kinds
    assert produced.offsets == fresh.offsets
    assert produced.indices == fresh.indices
    assert produced.var_slot == fresh.var_slot
    assert produced.var_names == fresh.var_names
    assert produced.output == fresh.output
    assert produced.levels_list() == fresh.levels_list()


def _produce_fresh(name):
    return compile_circuit(SCENARIOS[name]())


def _produce_recompiled(name):
    """Compile, append an edit (a contradiction OR-ed into the output, so
    every gate kind joins the dirty cone), then delta-recompile."""
    c = SCENARIOS[name]()
    old = compile_circuit(c)
    aux = c.variable("aux")
    c.set_output(c.or_gate([c.output, c.and_gate([aux, c.negation(aux)])]))
    produced = recompile(old, c)
    _assert_identical_lowering(produced, compiled_module.CompiledCircuit(c))
    return produced


def _produce_cache_loaded(name):
    """Store a lowering in the on-disk plan cache, then rebuild the same
    arena and load the plan back instead of lowering it."""
    with tempfile.TemporaryDirectory() as directory:
        with plancache.plan_cache_dir_set(directory):
            previous_min = plancache.min_gates()
            plancache.set_min_gates(0)
            try:
                compile_circuit(SCENARIOS[name]())
                before = compiled_module.compile_stats()["disk_cache_hits"]
                produced = compile_circuit(SCENARIOS[name]())
                assert (
                    compiled_module.compile_stats()["disk_cache_hits"]
                    == before + 1
                )
            finally:
                plancache.set_min_gates(previous_min)
    _assert_identical_lowering(
        produced, compiled_module.CompiledCircuit(produced.source)
    )
    return produced


def _rebuild_bulk(circuit):
    """Replay an arena through the bulk construction APIs, gate for gate.

    Walks the source circuit's flat mirrors in gate-id order and re-creates
    maximal runs of VAR leaves via ``append_variables`` and of operator
    gates via ``append_gates`` (constants via the scalar calls). Gate ids
    must come out identical, pinning the bulk APIs to the scalar
    ``variable``/``and_gate``/``or_gate`` construction bit for bit.
    """
    from repro.circuits.circuit import K_AND, K_FALSE, K_NOT, K_OR, K_TRUE, K_VAR

    rebuilt = Circuit()
    codes = circuit._kind_codes
    offs = circuit._input_offsets
    flat = circuit._inputs_flat
    slot_names = circuit._slot_names
    var_slots = circuit._var_slots
    size = len(codes)
    i = 0
    while i < size:
        code = codes[i]
        if code == K_VAR:
            j = i
            names = []
            while j < size and codes[j] == K_VAR:
                names.append(slot_names[var_slots[j]])
                j += 1
            got = rebuilt.append_variables(names)
            assert list(got) == list(range(i, j))
            i = j
        elif code in (K_TRUE, K_FALSE):
            assert rebuilt.constant(code == K_TRUE) == i
            i += 1
        else:
            j = i
            kinds = []
            inputs = []
            offsets = [0]
            while j < size and codes[j] in (K_NOT, K_AND, K_OR):
                kinds.append(codes[j])
                inputs.extend(flat[offs[j] : offs[j + 1]])
                offsets.append(len(inputs))
                j += 1
            got = rebuilt.append_gates(kinds, inputs, offsets)
            assert got == range(i, j)
            i = j
    if circuit.output is not None:
        rebuilt.set_output(circuit.output)
    for name in ("_kind_codes", "_var_slots", "_inputs_flat",
                 "_input_offsets", "_gate_levels"):
        assert getattr(rebuilt, name) == getattr(circuit, name), name
    assert rebuilt._slot_names == circuit._slot_names
    return rebuilt


def _produce_bulk_rebuilt(name):
    """Rebuild the scenario arena through append_variables/append_gates."""
    fresh = SCENARIOS[name]()
    produced = compile_circuit(_rebuild_bulk(fresh))
    _assert_identical_lowering(produced, compile_circuit(fresh))
    return produced


PRODUCERS = {
    "fresh": _produce_fresh,
    "recompiled": _produce_recompiled,
    "cache-loaded": _produce_cache_loaded,
    "bulk-rebuilt": _produce_bulk_rebuilt,
}


def scenario_fixture_data(name, producer="fresh"):
    compiled = PRODUCERS[producer](name)
    n = len(compiled.variables())
    worlds = [
        [(mask >> i) & 1 for i in range(n)] for mask in range(1 << n)
    ]
    marginal_rows = [
        [0.05 + 0.9 * ((i + k) % 7) / 7 for i in range(n)] for k in range(4)
    ]
    return compiled, worlds, marginal_rows


# --------------------------------------------------------------------------- #
# execution paths: each returns (bool results, float results)

def _path_scalar_kernel(compiled, worlds, marginal_rows, monkeypatch, _worker):
    monkeypatch.setattr(compiled_module, "_np", None)
    evaluated = compiled.evaluate_batch(worlds)
    probabilities = compiled.probability_batch(marginal_rows)
    return [bool(v) for v in evaluated], probabilities

def _path_interpreter(compiled, worlds, marginal_rows, monkeypatch, _worker):
    monkeypatch.setattr(compiled_module, "_np", None)
    monkeypatch.setattr(compiled_module, "CODEGEN_GATE_LIMIT", 0)
    fresh = compiled_module.CompiledCircuit(compiled.source)  # uncached kernels
    evaluated = fresh.evaluate_batch(worlds)
    probabilities = fresh.probability_batch(marginal_rows)
    return [bool(v) for v in evaluated], probabilities

def _path_numpy_batch(compiled, worlds, marginal_rows, _monkeypatch, _worker):
    pytest.importorskip("numpy")
    return (
        compiled.evaluate_batch(worlds),
        compiled.probability_batch(marginal_rows),
    )

def _path_multiprocess(compiled, worlds, marginal_rows, _monkeypatch, _worker):
    np = pytest.importorskip("numpy")
    if not parallel.parallel_available():
        pytest.skip("shared memory unavailable")
    n = len(compiled.variables())
    world_matrix = np.asarray(worlds, dtype=np.bool_).reshape(len(worlds), n)
    marginal_matrix = np.asarray(marginal_rows, dtype=np.float64).reshape(
        len(marginal_rows), n
    )
    evaluated = parallel.evaluate_batch_sharded(compiled, world_matrix, workers=2)
    probabilities = parallel.probability_batch_sharded(
        compiled, marginal_matrix, workers=2
    )
    return evaluated.tolist(), probabilities.tolist()

def _path_distributed(compiled, worlds, marginal_rows, _monkeypatch, worker):
    np = pytest.importorskip("numpy")
    n = len(compiled.variables())
    world_matrix = np.asarray(worlds, dtype=np.bool_).reshape(len(worlds), n)
    marginal_matrix = np.asarray(marginal_rows, dtype=np.float64).reshape(
        len(marginal_rows), n
    )
    hosts = (worker.address,)
    evaluated = distributed.evaluate_batch_distributed(
        compiled, world_matrix, hosts=hosts
    )
    probabilities = distributed.probability_batch_distributed(
        compiled, marginal_matrix, hosts=hosts
    )
    return evaluated.tolist(), probabilities.tolist()


def _path_persistent_pool(compiled, worlds, marginal_rows, _monkeypatch, worker):
    """The sixth path: repeat calls over the warm persistent HostPool.

    Runs both passes twice against the same worker; the second round must
    reuse the pooled connection (no new connect) and skip the plan bytes
    (the digest handshake), while returning exactly the first round's —
    and every other tier's — values.
    """
    np = pytest.importorskip("numpy")
    n = len(compiled.variables())
    world_matrix = np.asarray(worlds, dtype=np.bool_).reshape(len(worlds), n)
    marginal_matrix = np.asarray(marginal_rows, dtype=np.float64).reshape(
        len(marginal_rows), n
    )
    hosts = (worker.address,)
    first_eval = distributed.evaluate_batch_distributed(
        compiled, world_matrix, hosts=hosts
    )
    first_probs = distributed.probability_batch_distributed(
        compiled, marginal_matrix, hosts=hosts
    )
    stats_before = distributed.pool_stats()
    evaluated = distributed.evaluate_batch_distributed(
        compiled, world_matrix, hosts=hosts
    )
    probabilities = distributed.probability_batch_distributed(
        compiled, marginal_matrix, hosts=hosts
    )
    stats_after = distributed.pool_stats()
    assert stats_after["connects"] == stats_before["connects"]
    assert stats_after["plans_published"] == stats_before["plans_published"]
    assert evaluated.tolist() == first_eval.tolist()
    assert probabilities.tolist() == first_probs.tolist()
    return evaluated.tolist(), probabilities.tolist()


#: path name -> (runner, exact-float agreement with the numpy tier?)
PATHS = {
    "scalar-kernel": (_path_scalar_kernel, False),
    "interpreter": (_path_interpreter, False),
    "numpy-batch": (_path_numpy_batch, True),
    "multiprocess": (_path_multiprocess, True),
    "distributed": (_path_distributed, True),
    "persistent-pool": (_path_persistent_pool, True),
}


def _reference(compiled, worlds, marginal_rows):
    """The per-world scalar oracle every path is held to."""
    evaluated = [compiled.evaluate(w) for w in worlds]
    probabilities = [compiled.probability(row) for row in marginal_rows]
    return evaluated, probabilities


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("producer", sorted(PRODUCERS))
@pytest.mark.parametrize(
    "path",
    [
        "scalar-kernel",
        "interpreter",
        "numpy-batch",
        "multiprocess",
        pytest.param("distributed", marks=pytest.mark.distributed),
        pytest.param("persistent-pool", marks=pytest.mark.distributed),
    ],
)
def test_path_agrees_with_scalar_oracle(
    scenario, producer, path, monkeypatch, request
):
    compiled, worlds, marginal_rows = scenario_fixture_data(scenario, producer)
    worker = (
        request.getfixturevalue("module_worker")
        if path in ("distributed", "persistent-pool")
        else None
    )
    runner, exact = PATHS[path]
    evaluated, probabilities = runner(
        compiled, worlds, marginal_rows, monkeypatch, worker
    )
    expected_eval, expected_probs = _reference(compiled, worlds, marginal_rows)
    assert evaluated == expected_eval
    assert len(probabilities) == len(expected_probs)
    for got, want in zip(probabilities, expected_probs):
        assert math.isclose(got, want, abs_tol=1e-12)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("producer", sorted(PRODUCERS))
def test_vectorized_tiers_agree_bitwise(scenario, producer, request):
    """numpy / pool / wire run the same kernels: equality, no tolerance."""
    pytest.importorskip("numpy")
    compiled, worlds, marginal_rows = scenario_fixture_data(scenario, producer)
    base_eval, base_probs = _path_numpy_batch(
        compiled, worlds, marginal_rows, None, None
    )
    if parallel.parallel_available():
        np = pytest.importorskip("numpy")
        n = len(compiled.variables())
        world_matrix = np.asarray(worlds, dtype=np.bool_).reshape(len(worlds), n)
        for workers in (0, 1, 2, 4):
            sharded = parallel.evaluate_batch_sharded(
                compiled, world_matrix, workers=workers
            )
            assert sharded.dtype == np.bool_
            assert sharded.tolist() == base_eval
        pool_eval, pool_probs = _path_multiprocess(
            compiled, worlds, marginal_rows, None, None
        )
        assert pool_eval == base_eval
        assert pool_probs == base_probs
    # The wire plan (serialize → deserialize) reruns the same level schedule.
    plan = distributed.plan_from_bytes(compiled.wire_bytes())
    assert plan.run_rows(worlds, as_float=False) == base_eval
    assert plan.run_rows(marginal_rows, as_float=True) == base_probs


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_empty_batches_everywhere(scenario):
    """Zero-row batches are a fixed point of every path."""
    compiled, _worlds, _rows = scenario_fixture_data(scenario)
    assert compiled.evaluate_batch([]) == []
    assert compiled.probability_batch([]) == []


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_probability_engines_agree_on_corpus(scenario):
    """The registered engines agree with brute force on every scenario."""
    from repro.circuits import probability

    compiled, _worlds, _rows = scenario_fixture_data(scenario)
    n = len(compiled.variables())
    space = EventSpace(
        {name: 0.1 + 0.8 * i / max(1, n)
         for i, name in enumerate(compiled.variables())}
    )
    oracle = compiled.probability_enumerate(space)
    for engine in ("enumerate", "shannon", "message_passing"):
        assert math.isclose(
            probability(compiled, space, engine=engine), oracle, abs_tol=1e-9
        ), engine


# --------------------------------------------------------------------------- #
# instance-backend conformance: columnar vs object, property-based

from hypothesis import given, settings, strategies as st

from repro.core.engine import build_provenance_circuit
from repro.instances import ColumnarInstance, Instance, fact
from repro.queries import atom, cq, ucq, variables

_qx, _qy, _qz = variables("x", "y", "z")

#: CQ/UCQ shapes chosen to hit the joins' edge cases: self-joins, repeated
#: variables, constants, duplicate atoms, and relations with no facts.
BACKEND_QUERIES = (
    cq(atom("R", _qx)),
    cq(atom("R", _qx), atom("S", _qx, _qy), atom("T", _qy)),
    cq(atom("S", _qx, _qy), atom("S", _qy, _qz)),
    cq(atom("S", _qx, _qx)),
    cq(atom("R", 1), atom("S", 1, _qy)),
    cq(atom("U", _qx)),
    cq(atom("R", _qx), atom("R", _qx)),
    ucq(cq(atom("R", _qx), atom("T", _qx)), cq(atom("S", _qx, _qy))),
    ucq(cq(atom("U", _qx)), cq(atom("T", _qx))),
)

_small = st.integers(min_value=0, max_value=3)
_backend_instances = st.tuples(
    st.lists(st.tuples(_small), max_size=6),
    st.lists(st.tuples(_small, _small), max_size=8),
    st.lists(st.tuples(_small), max_size=6),
)


def _both_backends(r_rows, s_rows, t_rows):
    """The same fact sequence (duplicates included) on both backends."""
    obj, col = Instance(), ColumnarInstance()
    for relation, rows in (("R", r_rows), ("S", s_rows), ("T", t_rows)):
        for row in rows:
            obj.add(fact(relation, *row))
            col.add(fact(relation, *row))
    return obj, col


@settings(max_examples=40, deadline=None)
@given(rows=_backend_instances, query_index=st.integers(0, len(BACKEND_QUERIES) - 1))
def test_columnar_backend_matches_object_oracle(rows, query_index):
    """Columnar CQ/UCQ evaluation and provenance pin to the object backend.

    Homomorphisms must agree *in enumeration order* (the vectorized join
    reproduces backtracking order), the witness-DNF provenance circuits
    must be bit-identical down to the arena's flat arrays, and the circuit
    must decide the query on sampled sub-worlds exactly like re-evaluating
    the query on the corresponding sub-instance.
    """
    obj, col = _both_backends(*rows)
    query = BACKEND_QUERIES[query_index]
    if hasattr(query, "atoms"):  # homomorphism order is a CQ-level contract
        assert list(query.homomorphisms(obj)) == list(query.homomorphisms(col))
    lineage_obj = build_provenance_circuit(obj, query)
    lineage_col = build_provenance_circuit(col, query)
    for name in ("_kind_codes", "_var_slots", "_inputs_flat",
                 "_input_offsets", "_gate_levels"):
        assert getattr(lineage_obj.circuit, name) == getattr(
            lineage_col.circuit, name
        ), name
    assert lineage_obj.circuit._slot_names == lineage_col.circuit._slot_names
    assert lineage_obj.circuit.output == lineage_col.circuit.output
    # Semantic spot check: the circuit decides the query on sub-worlds.
    facts_in = obj.facts()
    for mask in (0, (1 << len(facts_in)) - 1, 0b1011010 % (1 << max(1, len(facts_in)))):
        kept = [f for i, f in enumerate(facts_in) if mask >> i & 1]
        valuation = {
            f.variable_name: bool(mask >> i & 1) for i, f in enumerate(facts_in)
        }
        assert lineage_col.circuit.evaluate(valuation) == query.holds_in(
            Instance(kept)
        )
