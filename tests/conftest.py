"""Shared fixtures: keep the process-wide engine registry test-isolated."""

import pytest

from repro.circuits import evaluation


@pytest.fixture(autouse=True)
def restore_engine_globals():
    """Restore the engine registry, default and forced engine after each test.

    ``force_engine``/``set_default_engine``/``register_engine`` mutate
    process-wide state; a test that flips them (or fails mid-flip) must not
    leak its choice into the rest of the suite. Tests should still prefer
    the ``engine_forced``/``default_engine_set`` context managers — this
    fixture is the backstop.
    """
    engines = dict(evaluation._ENGINES)
    default = evaluation._DEFAULT_ENGINE
    forced = evaluation._FORCED_ENGINE
    yield
    evaluation._ENGINES.clear()
    evaluation._ENGINES.update(engines)
    evaluation._DEFAULT_ENGINE = default
    evaluation._FORCED_ENGINE = forced
