"""K-relations: the annotated positive relational algebra (Green et al.).

The foundation the paper's provenance connection stands on: a K-relation
maps tuples to annotations in a commutative semiring K, and the positive
relational algebra (σ, π, ⋈, ∪, ρ) acts on annotations — union adds,
join multiplies, projection sums over collapsed tuples. Instantiating K
recovers set semantics (Boolean), bag semantics (counting), probabilistic
lineage (PosBool), and the provenance polynomials.

This gives an independent, compositional evaluator for provenance that the
tests cross-check against both the homomorphism-based reference and the
circuit-based engine.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence

from repro.semirings.base import Semiring
from repro.util import ReproError, check

Tuple_ = tuple


class KRelation:
    """A finite map from tuples to non-zero semiring annotations.

    Tuples are positional; ``attributes`` names the columns (used by joins
    to decide the shared columns and by ``project``/``rename``).
    """

    def __init__(
        self,
        semiring: Semiring,
        attributes: Sequence[str],
        rows: Mapping[Tuple_, object] | Iterable[tuple[Tuple_, object]] = (),
    ):
        self.semiring = semiring
        self.attributes = tuple(attributes)
        check(
            len(set(self.attributes)) == len(self.attributes),
            "attribute names must be distinct",
        )
        self._rows: dict[Tuple_, object] = {}
        items = rows.items() if isinstance(rows, Mapping) else rows
        for values, annotation in items:
            self.add(values, annotation)

    def add(self, values: Tuple_, annotation) -> None:
        """Add a tuple's annotation (⊕-merged if the tuple already exists)."""
        values = tuple(values)
        check(
            len(values) == len(self.attributes),
            f"tuple arity {len(values)} != relation arity {len(self.attributes)}",
        )
        current = self._rows.get(values, self.semiring.zero())
        merged = self.semiring.add(current, annotation)
        if merged == self.semiring.zero():
            self._rows.pop(values, None)
        else:
            self._rows[values] = merged

    def annotation(self, values: Tuple_) -> object:
        """The annotation of ``values`` (semiring zero if absent)."""
        return self._rows.get(tuple(values), self.semiring.zero())

    def rows(self) -> dict[Tuple_, object]:
        """A copy of the tuple → annotation map."""
        return dict(self._rows)

    def support(self) -> set[Tuple_]:
        """Tuples with non-zero annotation."""
        return set(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return (
            f"KRelation({self.semiring.name}, {list(self.attributes)},"
            f" rows={len(self._rows)})"
        )

    # ------------------------------------------------------------------ #
    # the positive relational algebra

    def select(self, predicate: Callable[[dict], bool]) -> "KRelation":
        """σ: keep tuples whose attribute dict satisfies ``predicate``."""
        result = KRelation(self.semiring, self.attributes)
        for values, annotation in self._rows.items():
            if predicate(dict(zip(self.attributes, values))):
                result.add(values, annotation)
        return result

    def project(self, attributes: Sequence[str]) -> "KRelation":
        """π: project onto ``attributes``, ⊕-summing collapsed tuples."""
        attributes = tuple(attributes)
        missing = set(attributes) - set(self.attributes)
        check(not missing, f"unknown attributes {sorted(missing)}")
        indices = [self.attributes.index(a) for a in attributes]
        result = KRelation(self.semiring, attributes)
        for values, annotation in self._rows.items():
            result.add(tuple(values[i] for i in indices), annotation)
        return result

    def rename(self, mapping: Mapping[str, str]) -> "KRelation":
        """ρ: rename attributes."""
        renamed = tuple(mapping.get(a, a) for a in self.attributes)
        return KRelation(self.semiring, renamed, self._rows)

    def union(self, other: "KRelation") -> "KRelation":
        """∪: ⊕ of annotations, same schema required."""
        self._require_compatible(other)
        result = KRelation(self.semiring, self.attributes, self._rows)
        for values, annotation in other._rows.items():
            result.add(values, annotation)
        return result

    def join(self, other: "KRelation") -> "KRelation":
        """⋈: natural join; annotations ⊗-multiply.

        Shared attributes must match; the result schema is the union of the
        schemas (shared attributes once, in this relation's order first).
        """
        check(
            self.semiring is other.semiring
            or type(self.semiring) is type(other.semiring),
            "joined relations must share the semiring",
        )
        shared = [a for a in self.attributes if a in other.attributes]
        other_only = [a for a in other.attributes if a not in self.attributes]
        result_attributes = self.attributes + tuple(other_only)
        result = KRelation(self.semiring, result_attributes)
        other_shared_indices = [other.attributes.index(a) for a in shared]
        other_only_indices = [other.attributes.index(a) for a in other_only]
        my_shared_indices = [self.attributes.index(a) for a in shared]
        # Index the right-hand side by the shared-key for join efficiency.
        by_key: dict[Tuple_, list[tuple[Tuple_, object]]] = {}
        for values, annotation in other._rows.items():
            key = tuple(values[i] for i in other_shared_indices)
            by_key.setdefault(key, []).append((values, annotation))
        for values, annotation in self._rows.items():
            key = tuple(values[i] for i in my_shared_indices)
            for other_values, other_annotation in by_key.get(key, ()):
                combined = values + tuple(other_values[i] for i in other_only_indices)
                result.add(
                    combined, self.semiring.multiply(annotation, other_annotation)
                )
        return result

    def _require_compatible(self, other: "KRelation") -> None:
        if self.attributes != other.attributes:
            raise ReproError(
                f"schema mismatch: {self.attributes} vs {other.attributes}"
            )


def evaluate_cq_algebraically(query, instance_relations: Mapping[str, KRelation]):
    """Evaluate a Boolean CQ by joins and a final full projection.

    ``instance_relations`` maps relation names to K-relations whose
    attributes are positional (``"0", "1", …``). Returns the annotation of
    the empty tuple — the query's provenance under GKT semantics. This is
    the *plan-based* route to provenance, cross-checked in the tests against
    the homomorphism-based and automaton-based routes.
    """
    from repro.queries.cq import ConjunctiveQuery, Variable

    check(isinstance(query, ConjunctiveQuery), "algebraic evaluation needs a CQ")
    plan: KRelation | None = None
    fresh = 0
    for a in query.atoms:
        relation = instance_relations.get(a.relation)
        check(relation is not None, f"no K-relation for {a.relation!r}")
        renaming = {}
        selections: list[tuple[int, object]] = []
        seen_vars: dict[Variable, str] = {}
        equalities: list[tuple[str, str]] = []
        for index, term in enumerate(a.terms):
            column = str(index)
            if isinstance(term, Variable):
                if term in seen_vars:
                    fresh += 1
                    alias = f"_dup{fresh}"
                    renaming[column] = alias
                    equalities.append((seen_vars[term], alias))
                else:
                    renaming[column] = f"v_{term.name}"
                    seen_vars[term] = f"v_{term.name}"
            else:
                fresh += 1
                alias = f"_const{fresh}"
                renaming[column] = alias
                selections.append((alias, term))
        operand = relation.rename(renaming)
        for alias, constant in selections:
            operand = operand.select(lambda row, a=alias, c=constant: row[a] == c)
        for left, right in equalities:
            operand = operand.select(lambda row, l=left, r=right: row[l] == row[r])
            operand = operand.project(
                [attr for attr in operand.attributes if attr != right]
            )
        operand = operand.project(
            [attr for attr in operand.attributes if attr.startswith("v_")]
        )
        plan = operand if plan is None else plan.join(operand)
    assert plan is not None
    return plan.project([]).annotation(())


def from_instance(
    instance, semiring: Semiring, annotation: Mapping | Callable
) -> dict[str, KRelation]:
    """Build positional K-relations from an Instance plus fact annotations."""
    annotate = annotation if callable(annotation) else annotation.__getitem__
    relations: dict[str, KRelation] = {}
    for f in instance.facts():
        rel = relations.get(f.relation)
        if rel is None:
            rel = KRelation(semiring, [str(i) for i in range(f.arity)])
            relations[f.relation] = rel
        rel.add(f.args, annotate(f))
    return relations
