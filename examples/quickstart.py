"""Quickstart: uncertain data in, exact probabilities out.

Builds the paper's Table 1 (the PODS/STOC trips c-instance), asks
possibility / certainty / probability questions, computes certain answers
over key-violating data with the trichotomy-routed CQA engine, runs the
headline #P-hard query ``∃xy R(x)S(x,y)T(y)`` on a tree-like TID instance
with the treewidth-based engine, cross-checks every number against brute
force, shows the compile-once/evaluate-many circuit API, pushes a million
uncertain facts through the columnar frontend without materializing a
single ``Fact`` object, and finishes with the sharded multi-process
backend (worker-count knob, deterministic seeding).

Everything here imports from the package root — ``repro`` is the blessed
public surface.

How the pieces fit together — the four-stage lowering pipeline, the
engine registry, and a module map — is documented in ``ARCHITECTURE.md``
at the repository root.

Run:  python examples/quickstart.py
"""

from repro import (
    ALL_TRIPS,
    TIDInstance,
    atom,
    build_lineage,
    circuit_probability,
    compile_circuit,
    cq,
    fact,
    monte_carlo_probability,
    table1_cinstance,
    table1_pc_instance,
    tid_probability,
    tid_probability_enumerate,
    variables,
)


def trips_example() -> None:
    print("=" * 70)
    print("Table 1 — trips booked depending on attended conferences")
    print("=" * 70)
    ci = table1_cinstance()
    print(f"{'Trip':<38} {'possible':<9} {'certain':<8}")
    for trip in ALL_TRIPS:
        print(f"{str(trip):<38} {str(ci.is_possible(trip)):<9} {str(ci.is_certain(trip)):<8}")

    print("\nWith P(pods)=0.7, P(stoc)=0.5 (pc-instance):")
    pc = table1_pc_instance(p_pods=0.7, p_stoc=0.5)
    for trip in ALL_TRIPS:
        print(f"  P({trip}) = {pc.fact_probability(trip):.3f}")

    print("\nDistinct possible worlds (one per event valuation):")
    for world, valuation in ci.possible_worlds():
        attending = [name for name, value in valuation.items() if value]
        print(f"  attend {attending or ['nothing']}: {len(world)} trips booked")


def cqa_example() -> None:
    """Certain answers over key-violating data, routed by the trichotomy.

    A different uncertainty model from the rest of the quickstart: the
    instance *violates* its primary keys, the possible worlds are its
    maximal consistent subsets (repairs), and a Boolean query is certain
    iff it holds in every repair.  ``repro.classify`` places each
    self-join-free query in the Koutris–Wijsen trichotomy —
    first-order-rewritable, PTIME, or coNP-complete — and
    ``repro.certain_answers`` routes accordingly: FO queries run as a
    direct rewriting against the instance (no circuits, no repair
    enumeration), PTIME queries get the polynomial propagation algorithm,
    and coNP queries fall back to the lineage-circuit pipeline over a
    uniformly random repair.  Every path is cross-checked here against
    the brute-force all-repairs oracle.
    """
    from repro import (
        certain_answers,
        certain_oracle,
        classify,
        cqa_trichotomy_queries,
        fo_rewriting,
        key_violation_instance,
    )

    print()
    print("=" * 70)
    print("Certain answers under primary keys — the CQA trichotomy")
    print("=" * 70)
    instance, keys = key_violation_instance(12, violation_rate=0.4, seed=3)
    n_blocks = sum(len(set(f.args[0] for f in instance.by_relation(r)))
                   for r in ("R", "S"))
    print(f"instance: {len(instance)} facts in {n_blocks} blocks "
          "(key = first column, some blocks conflicting)")
    for name, query in cqa_trichotomy_queries().items():
        classification = classify(query, keys)
        answer = certain_answers(query, instance, keys)
        oracle = certain_oracle(query, instance, keys)
        assert answer == oracle, "engine must match the all-repairs oracle"
        print(f"  {name:<6} class={classification.trichotomy:<6} "
              f"certain={answer} (oracle agrees)")
        if classification.trichotomy == "fo":
            print(f"         rewriting: {fo_rewriting(query, keys).formula}")


def treewidth_engine_example() -> None:
    print()
    print("=" * 70)
    print("The #P-hard query ∃xy R(x)S(x,y)T(y), exactly, on tree-like data")
    print("=" * 70)
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))

    tid = TIDInstance()
    for i in range(6):
        tid.add(fact("R", i), 0.5)
        tid.add(fact("T", i), 0.6)
        if i + 1 < 6:
            tid.add(fact("S", i, i + 1), 0.7)

    exact = tid_probability(query, tid)  # Theorem 1 engine
    oracle = tid_probability_enumerate(query, tid)  # 2^16 worlds
    sampled = monte_carlo_probability(query, tid, samples=20_000, seed=0)

    print(f"instance: {len(tid)} uncertain facts, treewidth "
          f"{tid.treewidth_upper_bound()}")
    print(f"engine (lineage + d-D evaluation): {exact:.6f}")
    print(f"possible-world enumeration oracle: {oracle:.6f}")
    print(f"Monte Carlo (20k samples):         {sampled:.6f}")
    assert abs(exact - oracle) < 1e-9, "engine must match brute force"


def compiled_circuit_example() -> None:
    """Compile a lineage once, then evaluate it many times for cheap.

    The recommended pattern for hot paths: build the circuit, lower it to
    the flat IR with :func:`repro.compile_circuit` (cached on the circuit),
    and reuse the compiled form for probabilities, single worlds, and whole
    batches of sampled worlds. ``evaluate_batch`` accepts either an
    iterable of valuations or a ``(n_worlds, n_vars)`` numpy matrix in
    variable-slot order; with numpy installed the whole batch runs through
    level-scheduled vectorized kernels, and without it the same call falls
    back to the scalar generated kernels — identical results either way
    (``repro.circuits.numpy_available()`` tells you which is active).
    ``probability_batch`` is the matching bulk form of the Theorem 1
    linear-time probability pass, one result per marginal assignment.

    The compile itself has fast paths too (see "The compile path" in
    ``ARCHITECTURE.md``): repeated ``compile_circuit`` calls on an
    unchanged arena are memoized; after appending to the arena,
    :func:`repro.circuits.recompile` patches the previous lowering in
    time proportional to the edit; and setting ``REPRO_PLAN_CACHE_DIR``
    (or ``repro.circuits.plancache.set_plan_cache_dir``) persists
    lowerings on disk so a *new process* compiling the same circuit —
    a restarted service, a CI re-run, a bounced ``repro-worker`` —
    rebuilds the plan from the cache with zero lowering passes.
    """
    print()
    print("=" * 70)
    print("Compile once, evaluate many")
    print("=" * 70)
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = TIDInstance()
    for i in range(4):
        tid.add(fact("R", i), 0.5)
        tid.add(fact("T", i), 0.6)
        if i + 1 < 4:
            tid.add(fact("S", i, i + 1), 0.7)

    lineage = build_lineage(tid.instance, query)
    compiled = compile_circuit(lineage.circuit)   # once
    space = tid.event_space()

    from repro import numpy_available

    exact = compiled.probability(space)           # Theorem 1 linear pass
    sampled_worlds = [space.sample(seed) for seed in range(5)]
    hits = compiled.evaluate_batch(sampled_worlds)  # one vectorized pass
    # Bulk marginal rows: e.g. a probability sweep over one fact's weight.
    sweeps = [
        {
            name: p if name.startswith("f:R") else space.probability(name)
            for name in compiled.variables()
        }
        for p in (0.1, 0.5, 0.9)
    ]
    swept_probs = compiled.probability_batch(sweeps)
    via_registry = circuit_probability(lineage.circuit, space, engine="message_passing")

    backend = "numpy batch kernels" if numpy_available() else "scalar fallback"
    print(f"compiled lineage: {len(compiled)} gates over "
          f"{len(compiled.variables())} variables ({backend})")
    print(f"P(query) via compiled d-D pass:      {exact:.6f}")
    print(f"P(query) via message-passing engine: {via_registry:.6f}")
    print(f"query true in sampled worlds:        {hits}")
    print("P(query) sweeping P(R*)=0.1/0.5/0.9: "
          + ", ".join(f"{p:.4f}" for p in swept_probs))
    assert abs(exact - via_registry) < 1e-9, "engines must agree"


def columnar_example() -> None:
    """A million uncertain facts, end to end, without one Fact object.

    The columnar frontend (see "The columnar frontend" in
    ``ARCHITECTURE.md``): instances store dictionary-encoded int columns,
    U-relation style, and conjunctive queries evaluate as vectorized hash
    joins whose rows carry witness fact ids. Generators emit encoded
    column batches natively — ``backend="columnar"`` below — so the whole
    generate → query → provenance → compile pipeline runs array-at-a-time.
    The backend is a knob, not a fork: ``REPRO_INSTANCE_BACKEND=columnar``
    (or ``repro.instances.set_instance_backend``) flips every entry point,
    and circuits/probabilities come out bit-identical to the object path
    (the E18 benchmark asserts this at every size).
    """
    import time

    from repro import build_provenance_circuit, numpy_available, rst_chain_tid

    print()
    print("=" * 70)
    print("Columnar instances: a million facts through the pipeline")
    print("=" * 70)
    # 3n - 1 facts: R(i), T(i) for each position, S(i, i+1) between them.
    n = 333_334 if numpy_available() else 3_334
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))

    start = time.perf_counter()
    tid = rst_chain_tid(n, seed=0, backend="columnar")
    generated = time.perf_counter()
    lineage = build_provenance_circuit(tid.instance, query)
    compiled = compile_circuit(lineage.circuit)
    done = time.perf_counter()

    print(f"instance: {len(tid.instance):,} uncertain facts "
          f"({'columnar + numpy joins' if numpy_available() else 'scalar fallback'})")
    print(f"generate:             {generated - start:8.3f} s")
    print(f"provenance + compile: {done - generated:8.3f} s "
          f"({len(compiled):,} gates)")
    print(f"Fact objects materialized: {tid.instance.facts_materialized}")
    assert tid.instance.facts_materialized == 0, "pipeline must stay object-free"


def parallel_example() -> None:
    """Shard Monte-Carlo evaluation across worker processes, deterministically.

    The fourth lowering stage (see ``ARCHITECTURE.md``): the compiled
    circuit's CSR arrays go into shared memory once, and fixed-size sample
    shards are generated *inside* the workers from per-shard seeds, so the
    estimate is bit-identical no matter how many workers run — which this
    example asserts. The knob is ``workers=`` per call, process-wide
    ``repro.circuits.set_parallel_workers`` / ``REPRO_PARALLEL_WORKERS``,
    or ``python -m repro run E14 --workers 4``. On a single-core machine
    the pool demo is skipped gracefully (results would be identical, just
    slower); the deterministic shard scheme itself runs everywhere.
    """
    import os

    from repro import capabilities

    print()
    print("=" * 70)
    print("Sharded multi-process evaluation")
    print("=" * 70)
    caps = capabilities()
    if not caps["parallel"]:
        print("sharded backend unavailable (needs numpy + shared memory) — "
              "skipping; the same calls run on the serial kernels")
        return
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = TIDInstance()
    for i in range(12):
        tid.add(fact("R", i), 0.4)
        tid.add(fact("T", i), 0.5)
        if i + 1 < 12:
            tid.add(fact("S", i, i + 1), 0.6)

    serial = monte_carlo_probability(query, tid, samples=40_000, seed=11, workers=0)
    print(f"Monte Carlo (40k samples), in-process:  {serial:.6f}")
    if (os.cpu_count() or 1) < 2:
        print("only one CPU visible — skipping the worker-pool demo "
              "(set workers>=2 on a multicore machine; the estimate is "
              "guaranteed bit-identical)")
        return
    for workers in (2, 4):
        sharded = monte_carlo_probability(
            query, tid, samples=40_000, seed=11, workers=workers
        )
        print(f"Monte Carlo (40k samples), {workers} workers:   {sharded:.6f}")
        assert sharded == serial, "fixed seed must give identical estimates"
    print("identical estimates at every worker count — determinism verified")


def distributed_example() -> None:
    """Serialize a plan to the wire, and (with workers up) evaluate across hosts.

    The fifth lowering stage (see "Running a distributed job" in
    ``ARCHITECTURE.md``): a compiled circuit's plan packs into a versioned,
    checksummed wire blob that any worker — started with ``repro-worker
    serve`` / ``python -m repro serve`` — can decode and evaluate. The
    wire round trip itself needs no sockets, so this example always shows
    it; the cross-host part runs only when ``REPRO_DISTRIBUTED_HOSTS``
    names live workers (it asserts the distributed estimate is
    bit-identical to the local one, exactly like the worker-pool demo).

    Connections persist between calls: the process-wide host pool keeps
    them open, so a second call here pays neither the TCP setup nor the
    plan transfer (the worker confirms the plan digest instead). To
    require authentication, export the same shared secret on both sides —
    ``REPRO_DISTRIBUTED_SECRET=...`` for the coordinator and ``repro
    serve --secret ...`` (or the same variable) for every worker; workers
    then refuse any connection that cannot answer their HMAC challenge.

    For untrusted networks, encrypt the link too: point
    ``REPRO_DISTRIBUTED_TLS_CERT`` / ``REPRO_DISTRIBUTED_TLS_KEY`` at the
    worker's certificate (``repro serve --tls-cert/--tls-key`` also
    works) and ``REPRO_DISTRIBUTED_TLS_CA`` at the CA bundle the
    coordinator should verify it against; setting the CA *and* a cert on
    the coordinator side upgrades to mutual TLS. Certificate-verification
    failures are always fatal for that host (the pool warns once and
    evaluates elsewhere); only ``REPRO_DISTRIBUTED_TLS_ALLOW_PLAINTEXT=1``
    lets a coordinator retry a non-TLS legacy worker unencrypted. TLS and
    the HMAC secret compose — see "Transport security" in
    ``ARCHITECTURE.md``.
    """
    from repro import distributed_hosts, numpy_available, plan_from_bytes

    print()
    print("=" * 70)
    print("Distributed execution over wire-serialized plans")
    print("=" * 70)
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = TIDInstance()
    for i in range(12):
        tid.add(fact("R", i), 0.4)
        tid.add(fact("T", i), 0.5)
        if i + 1 < 12:
            tid.add(fact("S", i, i + 1), 0.6)
    compiled = compile_circuit(build_lineage(tid.instance, query).circuit)

    blob = compiled.wire_bytes()  # versioned + CRC-checksummed, numpy optional
    plan = plan_from_bytes(blob)  # what a remote worker reconstructs
    space = tid.event_space()
    world = space.sample(seed=1)
    row = [world[name] for name in compiled.variables()]
    assert plan.run_rows([row], as_float=False)[0] == compiled.evaluate(world)
    print(f"wire plan: {len(blob)} bytes for {compiled.size} gates — "
          "decoded copy agrees with the local circuit")

    hosts = distributed_hosts()
    if not hosts or not numpy_available():
        print("no REPRO_DISTRIBUTED_HOSTS set — start workers with")
        print("  repro-worker serve --port 7761   (and 7762, ...)")
        print("then export REPRO_DISTRIBUTED_HOSTS=127.0.0.1:7761,127.0.0.1:7762")
        print("and re-run; the estimate is guaranteed bit-identical")
        return
    serial = monte_carlo_probability(query, tid, samples=40_000, seed=11, hosts=())
    remote = monte_carlo_probability(query, tid, samples=40_000, seed=11)
    print(f"Monte Carlo (40k samples), local:        {serial:.6f}")
    print(f"Monte Carlo (40k samples), {len(hosts)} host(s):    {remote:.6f}")
    assert remote == serial, "fixed seed must give identical estimates"
    print("identical estimates across hosts — determinism verified")
    repeat = monte_carlo_probability(query, tid, samples=40_000, seed=11)
    assert repeat == serial
    from repro import pool_stats

    stats = pool_stats()
    print(f"persistent pool: {len(stats['open_connections'])} connection(s) "
          f"reused, {stats['plans_published']} plan transfer(s) total "
          "(repeat calls skip connect + publish)")


def service_example() -> None:
    """Start the always-on query service and serve marginals over HTTP.

    The serving layer (see "The serving layer" in ``ARCHITECTURE.md``):
    ``repro serve-http`` keeps the compile caches, the plan cache and the
    distributed host pool resident in one long-lived process, coalesces
    concurrent requests for the same plan into shared matrix passes, and
    memoizes served marginals. Here the service is spawned as a local
    subprocess via the same :func:`repro.service.spawn_service` helper
    the tests and the E19 benchmark use; in production you would run
    ``python -m repro serve-http --port 8080`` and point
    :class:`repro.service.ServiceClient` (or any HTTP client — the
    protocol is plain JSON) at it.
    """
    from repro import spawn_service

    print()
    print("=" * 70)
    print("The always-on query service")
    print("=" * 70)
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = TIDInstance()
    for i in range(8):
        tid.add(fact("R", i), 0.5)
        tid.add(fact("T", i), 0.6)
        if i + 1 < 8:
            tid.add(fact("S", i, i + 1), 0.7)
    compiled = compile_circuit(build_lineage(tid.instance, query).circuit)
    space = tid.event_space()
    marginals = [space.probability(name) for name in compiled.variables()]

    handle = spawn_service()
    try:
        client = handle.client()
        digest = client.register_compiled(compiled)  # content-addressed
        print(f"service up at {handle.url}, plan registered as {digest}")
        served = client.probability(digest, [marginals])["marginals"][0]
        direct = compiled.probability_batch([marginals])[0]
        print(f"P(query) served over HTTP:     {served:.6f}")
        print(f"P(query) via the library:      {float(direct):.6f}")
        assert served == float(direct), "served marginal must be identical"
        again = client.probability(digest, [marginals])
        hits = client.stats()["result_cache"]["hits"]
        assert again["marginals"][0] == served and hits >= 1
        print(f"repeat request answered from the result cache ({hits} hit)")
        client.shutdown()
        assert handle.wait_dead(10.0) == 0, "service must exit cleanly"
        print("service shut down cleanly over HTTP")
    finally:
        handle.stop()


if __name__ == "__main__":
    trips_example()
    cqa_example()
    treewidth_engine_example()
    compiled_circuit_example()
    columnar_example()
    parallel_example()
    distributed_example()
    service_example()
    print("\nQuickstart complete — all exact numbers cross-checked.")
