"""E15 — distributed shard execution over wire-serialized circuit plans.

The fifth lowering stage, measured end to end on localhost: the R–S–T chain
Monte-Carlo workload of E14 is fanned out to real ``repro serve`` worker
*subprocesses* over the length-prefixed TCP protocol of
:mod:`repro.circuits.distributed`. Compared paths:

- **fused, in-process** — the stage-4 deterministic ``(seed, shard)``
  kernels with ``workers=0``: the local reference every distributed row
  must match bit for bit;
- **distributed, 1 / 2 workers** — the same shards streamed to localhost
  worker processes that rebuilt the plan from its wire form;
- **amortization** — the headline of the persistent runtime: the same
  small workload issued cold (``reset_pool`` first, so the call pays TCP
  connect + hello + plan publish, the old per-call baseline) versus
  issued again over the warm :class:`~repro.circuits.distributed.HostPool`
  (connections alive, plan digest-confirmed on every worker) — the repeat
  call must show the setup cost gone, on any machine, because it is
  overhead elimination rather than parallel speedup.

The bench also records the wire-format footprint (plan bytes for the
benchmark circuit, serialize + deserialize wall time) and a row-sharded
``probability_batch`` over TCP. On one machine the distributed rows mostly
measure protocol overhead — the point is the end-to-end proof (spawn,
serve, stream, merge, verify) plus honest per-shard cost numbers; the
wall-clock scaling story needs real second hosts, which CI cannot give us.
Every distributed row must produce the *same hit count* as the in-process
path for the fixed seed — the bench asserts it, after a full
serialize/deserialize round trip of the plan.

Run the table:  python benchmarks/bench_distributed_eval.py
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from pathlib import Path

from repro.circuits import compile_circuit
from repro.circuits import distributed, parallel
from repro.circuits.compiled import numpy_module
from repro.core import build_lineage
from repro.queries import atom, cq, variables
from repro.util import ReproError
from repro.workloads import rst_chain_tid

CHAIN_LENGTH = 120  # ~5.2k reachable gates, ~360 variables
FACT_PROBABILITY = 0.15
MC_SAMPLES = 200_000
PROBABILITY_ROWS = 20_000
SEED = 0

_REPO_ROOT = Path(__file__).resolve().parents[1]


def build_compiled():
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = rst_chain_tid(CHAIN_LENGTH, probability=FACT_PROBABILITY, seed=0)
    lineage = build_lineage(tid.instance, query)
    return compile_circuit(lineage.circuit), tid.event_space()


class _LatencyRelay:
    """A localhost TCP relay injecting fixed one-way delay per direction.

    Loopback has no link latency, so lockstep-vs-pipelined on the bare
    socket measures scheduler jitter, not the transport change. The relay
    restores the fleet regime pipelining targets: every byte stream
    crosses a FIFO that delivers data ``delay`` seconds after it was
    read — order-preserving and bandwidth-unlimited, so the only thing
    simulated is latency. Runs on a private loop thread; ``address`` is
    what the coordinator dials instead of the worker.
    """

    def __init__(self, target: str, delay: float):
        host, port = target.rsplit(":", 1)
        self._target = (host, int(port))
        self._delay = delay
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        port = asyncio.run_coroutine_threadsafe(
            self._start(), self._loop
        ).result(10)
        self.address = f"127.0.0.1:{port}"

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    async def _start(self) -> int:
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        return self._server.sockets[0].getsockname()[1]

    async def _pump(self, src, dst) -> None:
        queue: asyncio.Queue = asyncio.Queue()

        async def deliver():
            while True:
                due, data = await queue.get()
                await asyncio.sleep(max(0.0, due - self._loop.time()))
                if not data:
                    return
                dst.write(data)
                await dst.drain()

        delivery = asyncio.ensure_future(deliver())
        try:
            while True:
                data = await src.read(1 << 16)
                queue.put_nowait((self._loop.time() + self._delay, data))
                if not data:
                    break
            await delivery
        finally:
            delivery.cancel()
            try:
                dst.close()
            except Exception:
                pass

    async def _handle(self, reader, writer) -> None:
        # Swallow the stop()-time cancellation: asyncio.streams attaches a
        # done-callback that calls task.exception(), which re-raises out
        # of a task that ended *cancelled* and spams the log at teardown.
        try:
            try:
                up_reader, up_writer = await asyncio.open_connection(
                    *self._target
                )
            except OSError:
                writer.close()
                return
            await asyncio.gather(
                self._pump(reader, up_writer), self._pump(up_reader, writer),
                return_exceptions=True,
            )
        except asyncio.CancelledError:
            pass

    def stop(self) -> None:
        async def shut_down():
            self._server.close()
            await self._server.wait_closed()
            tasks = [task for task in asyncio.all_tasks()
                     if task is not asyncio.current_task()]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        asyncio.run_coroutine_threadsafe(shut_down(), self._loop).result(10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(10)
        self._loop.close()


def _timed(fn, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> None:
    np = numpy_module()
    print("E15 — distributed shard execution over wire-serialized plans")
    if np is None:
        print("numpy unavailable: the distributed matrix/sampling paths need "
              "the batch kernels; nothing to measure")
        return
    compiled, space = build_compiled()
    probs = [space.probability(n) for n in compiled.variables()]
    cpu_count = os.cpu_count() or 1
    print(f"lineage circuit: {compiled.size} gates, "
          f"{len(compiled.variables())} variables; {cpu_count} CPU(s) visible")

    # Wire-format footprint: the whole point of shipping plans, not circuits.
    def serialize_uncached():
        compiled._wire_cache = None  # defeat the per-circuit cache for timing
        return distributed.plan_to_bytes(compiled)

    serialize_seconds, plan_bytes = _timed(serialize_uncached)
    deserialize_seconds, _plan = _timed(
        lambda: distributed.plan_from_bytes(plan_bytes)
    )
    print(f"wire plan: {len(plan_bytes)} bytes "
          f"(serialize {serialize_seconds * 1e3:.2f} ms once, "
          f"deserialize+verify {deserialize_seconds * 1e3:.2f} ms per worker)")
    print(f"Monte-Carlo workload: {MC_SAMPLES} samples, seed {SEED}, "
          f"{len(parallel._sample_shards(MC_SAMPLES))} shards")

    local_seconds, local_hits = _timed(
        lambda: parallel.monte_carlo_hits(
            compiled, probs, MC_SAMPLES, seed=SEED, workers=0
        )
    )
    rows = [("fused in-process (reference)", local_seconds, 1.0, local_hits)]

    workers: list[distributed.LocalWorker] = []
    result: dict = {
        "gates": compiled.size,
        "variables": len(compiled.variables()),
        "cpu_count": cpu_count,
        "mc_samples": MC_SAMPLES,
        "seed": SEED,
        "plan_wire_bytes": len(plan_bytes),
        "plan_serialize_seconds": serialize_seconds,
        "plan_deserialize_seconds": deserialize_seconds,
        "local_seconds": local_seconds,
        "estimate": local_hits / MC_SAMPLES,
    }
    try:
        try:
            workers.append(distributed.spawn_local_worker())
            workers.append(distributed.spawn_local_worker())
        except (ReproError, OSError) as exc:
            print(f"could not spawn localhost workers ({exc}); "
                  "recording the local reference only")

        if len(workers) == 2:
            # Amortization — measured FIRST, while the workers have never
            # seen this plan, so the cold call pays the full per-call
            # baseline the pre-persistent protocol paid on *every* call:
            # TCP connect + hello + plan transfer + decode/verify. The
            # reconnect row resets the pool between calls (connections
            # re-opened, but the workers answer PLAN_HAVE, so the plan
            # does not cross the wire again); the warm row repeats over
            # live pooled connections. One small shard of samples keeps
            # the setup cost a visible fraction of the call.
            hosts = [worker.address for worker in workers]
            amort_samples = 4096
            local_ref = parallel.monte_carlo_hits(
                compiled, probs, amort_samples, seed=SEED, workers=0
            )
            start = time.perf_counter()
            first_hits = distributed.monte_carlo_hits(
                compiled, probs, amort_samples, seed=SEED, hosts=hosts
            )
            first_seconds = time.perf_counter() - start

            def reconnect_call():
                distributed.reset_pool()
                return distributed.monte_carlo_hits(
                    compiled, probs, amort_samples, seed=SEED, hosts=hosts
                )

            reconnect_seconds, reconnect_hits = _timed(reconnect_call)
            stats_before = distributed.pool_stats()
            warm_seconds, warm_hits = _timed(
                lambda: distributed.monte_carlo_hits(
                    compiled, probs, amort_samples, seed=SEED, hosts=hosts
                ),
                repeats=5,
            )
            stats_after = distributed.pool_stats()
            assert local_ref == first_hits == reconnect_hits == warm_hits, (
                "amortized calls must stay bit-identical"
            )
            republished = (
                stats_after["plans_published"] - stats_before["plans_published"]
            )
            assert republished == 0, (
                f"warm calls must not re-publish the plan ({republished} did)"
            )
            amortized_speedup = first_seconds / warm_seconds
            print(f"\namortization ({amort_samples} samples, 2 workers):")
            print(f"{'first call (connect + plan publish)':<38} "
                  f"{first_seconds * 1e3:>8.1f} ms")
            print(f"{'reconnect each call (digest hit)':<38} "
                  f"{reconnect_seconds * 1e3:>8.1f} ms "
                  f"{first_seconds / reconnect_seconds:>8.2f}x")
            print(f"{'persistent pool, warm repeat':<38} "
                  f"{warm_seconds * 1e3:>8.1f} ms "
                  f"{amortized_speedup:>8.2f}x")
            result["amortization"] = {
                "samples": amort_samples,
                "first_call_seconds": first_seconds,
                "reconnect_call_seconds": reconnect_seconds,
                "persistent_repeat_seconds": warm_seconds,
                "overhead_eliminated_seconds": first_seconds - warm_seconds,
                "amortized_speedup": amortized_speedup,
                "plans_republished_during_warm_repeats": republished,
            }

            # Pipelining — the second transport headline. Measured over a
            # simulated-latency link (see :class:`_LatencyRelay`): on bare
            # loopback the round trip is scheduler jitter and the
            # lockstep-vs-pipelined ratio swings around 1.0x; on any real
            # fleet link every frame pays latency, which is exactly what
            # keeping PIPELINE_DEPTH task frames in flight hides. One
            # worker behind a 1 ms one-way relay, shard grid shrunk so
            # the link crossing is a visible fraction of each shard:
            # lockstep (depth 1, the old wire) pays a full round trip of
            # dead air between a shard's RESULT and the next TASK;
            # pipelined correlates out-of-order RESULTs by shard id and
            # amortizes the latency across the in-flight window.
            pipe_samples = 65_536
            link_delay = 0.001
            saved_shard = parallel.MC_SHARD
            parallel.MC_SHARD = 1024
            relay = _LatencyRelay(workers[0].address, delay=link_delay)
            try:
                n_pipe_shards = len(parallel._sample_shards(pipe_samples))
                pipe_local = parallel.monte_carlo_hits(
                    compiled, probs, pipe_samples, seed=SEED, workers=0
                )

                def pipe_call():
                    return distributed.monte_carlo_hits(
                        compiled, probs, pipe_samples, seed=SEED,
                        hosts=[relay.address],
                    )

                with distributed.pipeline_depth_set(1):
                    pipe_call()  # warm the relayed link on this shard grid
                    lockstep_seconds, lockstep_hits = _timed(pipe_call)
                pipe_depth = distributed.pipeline_depth()
                pipelined_seconds, pipelined_hits = _timed(pipe_call)
                assert pipe_local == lockstep_hits == pipelined_hits, (
                    "pipelined dispatch must stay bit-identical to lockstep "
                    "and to the local oracle"
                )
                pipelining_speedup = lockstep_seconds / pipelined_seconds
                print(f"\npipelining ({pipe_samples} samples, "
                      f"{n_pipe_shards} shards, 1 worker behind a "
                      f"{link_delay * 1e3:.0f} ms one-way relay):")
                print(f"{'lockstep (depth 1, old wire)':<38} "
                      f"{lockstep_seconds * 1e3:>8.1f} ms")
                print(f"{f'pipelined (depth {pipe_depth})':<38} "
                      f"{pipelined_seconds * 1e3:>8.1f} ms "
                      f"{pipelining_speedup:>8.2f}x")
                result["pipelining"] = {
                    "samples": pipe_samples,
                    "shards": n_pipe_shards,
                    "depth": pipe_depth,
                    "link_delay_seconds": link_delay,
                    "warm_unpipelined_seconds": lockstep_seconds,
                    "warm_pipelined_seconds": pipelined_seconds,
                    "speedup_vs_unpipelined": pipelining_speedup,
                    "estimates_identical": True,
                }
            finally:
                parallel.MC_SHARD = saved_shard
                relay.stop()

        host_lists = [
            [worker.address for worker in workers[:count]]
            for count in range(1, len(workers) + 1)
        ]
        distributed_seconds: dict[int, float] = {}
        hit_counts = {0: local_hits}
        for hosts in host_lists:
            seconds, hits = _timed(
                lambda hosts=hosts: distributed.monte_carlo_hits(
                    compiled, probs, MC_SAMPLES, seed=SEED, hosts=hosts
                )
            )
            distributed_seconds[len(hosts)] = seconds
            hit_counts[len(hosts)] = hits
            rows.append(
                (f"distributed, {len(hosts)} localhost worker(s)", seconds,
                 local_seconds / seconds, hits)
            )
        assert len(set(hit_counts.values())) == 1, (
            f"fixed-seed estimates must be identical across host counts: "
            f"{hit_counts}"
        )
        result["estimates_identical_across_host_counts"] = True
        result["distributed_seconds"] = {
            str(count): seconds for count, seconds in distributed_seconds.items()
        }

        print(f"\n{'path':<38} {'wall':>10} {'speedup':>9} {'estimate':>10}")
        for label, seconds, speedup, hits in rows:
            print(f"{label:<38} {seconds:>8.3f} s {speedup:>8.2f}x"
                  f" {hits / MC_SAMPLES:>10.6f}")

        if workers:
            hosts = [worker.address for worker in workers]
            matrix = np.tile(np.asarray(probs), (PROBABILITY_ROWS, 1))
            serial_seconds, serial_probs = _timed(
                lambda: compiled.probability_batch(matrix)
            )
            wire_seconds, wire_probs = _timed(
                lambda: distributed.probability_batch_distributed(
                    compiled, matrix, hosts=hosts
                )
            )
            assert wire_probs.tolist() == serial_probs, "wire rows must agree"
            print(f"\nprobability_batch, {PROBABILITY_ROWS} rows:")
            print(f"{'in-process float pass':<38} {serial_seconds:>8.3f} s")
            print(f"{'distributed, 2 workers':<38} {wire_seconds:>8.3f} s")
            result["probability_batch_rows"] = PROBABILITY_ROWS
            result["probability_batch_serial_seconds"] = serial_seconds
            result["probability_batch_distributed_seconds"] = wire_seconds
    finally:
        for worker in workers:
            worker.stop()

    result["note"] = (
        "all rows ran on one machine, so the distributed timings measure "
        "protocol + scheduling overhead on localhost, not multi-host "
        "scaling; estimates are asserted bit-identical across 0/1/2 workers "
        "after a serialize/deserialize round trip of the plan; the "
        "amortization rows isolate the persistent-pool win (connect + plan "
        "publish eliminated on warm calls), which holds on any CPU count"
    )
    out_path = _REPO_ROOT / "BENCH_distributed_eval.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    print("determinism: estimates bit-identical across 0/1/2 localhost "
          "workers — PASS")


if __name__ == "__main__":
    main()
