"""Tests for the experiment CLI."""

import pytest

from repro.cli import EXPERIMENTS, command_list, command_run, main


class TestCli:
    def test_experiment_index_complete(self):
        # E16 stays unassigned: the service-layer bench it was reserved
        # for landed as E19 once E17/E18 had taken the next slots.
        assert set(EXPERIMENTS) == (
            {f"E{i}" for i in range(1, 16)} | {"E17", "E18", "E19", "E20"}
        )

    def test_run_unknown_engine(self):
        with pytest.raises(SystemExit, match="unknown engine"):
            command_run("E1", engine="not-an-engine")

    def test_list_prints_all(self, capsys):
        command_list()
        output = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in output

    def test_paper_command(self, capsys):
        assert main(["paper"]) == 0
        assert "Structurally Tractable" in capsys.readouterr().out

    def test_engines_command(self, capsys):
        from repro.circuits import numpy_available, parallel_available

        assert main(["engines"]) == 0
        output = capsys.readouterr().out
        for engine in ("enumerate", "shannon", "message_passing", "dd"):
            assert engine in output
        expected = "numpy" if numpy_available() else "scalar generated kernels"
        assert expected in output
        assert "sharded multi-process backend" in output
        expected = "available" if parallel_available() else "unavailable"
        assert expected in output
        assert "distributed backend" in output

    def test_forced_engine_does_not_leak_out_of_run(self, capsys):
        from repro.circuits import forced_engine

        assert main(["run", "E2", "--engine", "enumerate"]) == 0
        capsys.readouterr()
        assert forced_engine() is None

    def test_workers_flag_is_scoped_to_the_run(self, capsys):
        from repro.circuits import parallel_workers

        before = parallel_workers()
        assert main(["run", "E1", "--workers", "2"]) == 0
        capsys.readouterr()
        assert parallel_workers() == before

    def test_workers_flag_rejects_negative(self):
        with pytest.raises(SystemExit, match="workers"):
            command_run("E1", workers=-3)

    def test_run_unknown_experiment(self):
        with pytest.raises(SystemExit):
            command_run("E99")

    def test_run_small_experiment(self, capsys):
        # E1 is fast enough to run inside the test suite.
        assert main(["run", "E1"]) == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "0.9" in output

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "e2"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestDistributedCli:
    def test_hosts_flag_rejects_malformed_spec(self):
        from repro.cli import command_run

        with pytest.raises(SystemExit, match="--hosts"):
            command_run("E1", hosts="not-a-hostport")

    def test_hosts_flag_is_scoped_to_the_run(self, capsys):
        from repro.circuits import distributed_hosts

        before = distributed_hosts()
        # Port 1 is never listened on; the run must fall back to local
        # execution (warning once) and leave the knob untouched afterwards.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert main(["run", "E1", "--hosts", "127.0.0.1:1"]) == 0
        capsys.readouterr()
        assert distributed_hosts() == before

    def test_dist_eval_without_hosts_stays_local(self, capsys, monkeypatch):
        pytest.importorskip("numpy")
        from repro.circuits import distributed

        # Elastic members legitimately extend the empty default (the CI
        # distributed job keeps one REGISTERed worker around for the whole
        # suite), so neutralize them too: this test is about the truly
        # unconfigured path and its "start workers" hint.
        monkeypatch.setattr(distributed, "registered_hosts", lambda: ())
        with distributed.distributed_hosts_set(()):
            assert main(["dist-eval", "--samples", "2000"]) == 0
        output = capsys.readouterr().out
        assert "in-process estimate" in output
        assert "start workers" in output

    @pytest.mark.distributed
    def test_dist_eval_against_real_worker(self, capsys, worker_factory):
        pytest.importorskip("numpy")
        worker = worker_factory()
        from repro.cli import worker_main

        assert worker_main(
            ["dist-eval", "--hosts", worker.address, "--samples", "2000"]
        ) == 0
        output = capsys.readouterr().out
        assert "determinism verified" in output

    def test_worker_main_requires_command(self):
        from repro.cli import worker_main

        with pytest.raises(SystemExit):
            worker_main([])
