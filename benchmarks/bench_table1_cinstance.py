"""E2 — Table 1: the PODS/STOC trips c-instance.

Regenerates the paper's Table 1 rows with their annotations, derives the
possibility / certainty status of each trip, the exact distribution over the
four worlds, and trip marginals under attendance probabilities; benchmarks
possible-world enumeration and the pcc evaluation path.

Run the table:  python benchmarks/bench_table1_cinstance.py
Benchmarks:     pytest benchmarks/bench_table1_cinstance.py --benchmark-only
"""

import math

from repro.baselines import pcc_probability_enumerate
from repro.core import pcc_probability
from repro.instances import pcc_from_pc
from repro.queries import atom, cq, variables
from repro.workloads import ALL_TRIPS, table1_cinstance, table1_pc_instance

X, Y = variables("x", "y")

# (trip, annotation shown in the paper, possible, certain, P at 0.7/0.5)
EXPECTED_ROWS = [
    ("Trip(Paris CDG, Melbourne MEL)", "pods", True, False, 0.7),
    ("Trip(Melbourne MEL, Paris CDG)", "pods ∧ ¬stoc", True, False, 0.35),
    ("Trip(Melbourne MEL, Portland PDX)", "pods ∧ stoc", True, False, 0.35),
    ("Trip(Paris CDG, Portland PDX)", "¬pods ∧ stoc", True, False, 0.15),
    ("Trip(Portland PDX, Paris CDG)", "stoc", True, False, 0.5),
]


def experiment_rows():
    ci = table1_cinstance()
    pc = table1_pc_instance(p_pods=0.7, p_stoc=0.5)
    rows = []
    for trip, (name, annotation, _p, _c, expected) in zip(ALL_TRIPS, EXPECTED_ROWS):
        rows.append(
            (
                name,
                annotation,
                ci.is_possible(trip),
                ci.is_certain(trip),
                pc.fact_probability(trip),
                expected,
            )
        )
    return rows


def test_table1_possibility_certainty(benchmark):
    ci = table1_cinstance()

    def status():
        return [(ci.is_possible(t), ci.is_certain(t)) for t in ALL_TRIPS]

    result = benchmark(status)
    assert all(possible for possible, _certain in result)
    assert not any(certain for _possible, certain in result)


def test_table1_marginals(benchmark):
    pc = table1_pc_instance(p_pods=0.7, p_stoc=0.5)

    def marginals():
        return [pc.fact_probability(t) for t in ALL_TRIPS]

    values = benchmark(marginals)
    for measured, (_n, _a, _p, _c, expected) in zip(values, EXPECTED_ROWS):
        assert math.isclose(measured, expected)


def test_table1_query_via_engine(benchmark):
    pcc = pcc_from_pc(table1_pc_instance(0.7, 0.5))
    query = cq(atom("Trip", "Melbourne MEL", Y))  # can I leave Melbourne?

    p = benchmark(pcc_probability, query, pcc)
    assert math.isclose(p, pcc_probability_enumerate(query, pcc), abs_tol=1e-9)
    assert math.isclose(p, 0.7)  # needs pods; stoc split covered both ways


def main() -> None:
    print("E2 — Table 1 (trips c-instance), P(pods)=0.7, P(stoc)=0.5")
    print(f"{'trip':<36} {'annotation':<14} {'poss':<5} {'cert':<5} {'P':>6} {'paper P':>8}")
    for name, annotation, possible, certain, p, expected in experiment_rows():
        print(
            f"{name:<36} {annotation:<14} {str(possible):<5} {str(certain):<5}"
            f" {p:>6.2f} {expected:>8.2f}"
        )
    pc = table1_pc_instance(0.7, 0.5)
    print("\nworld distribution:")
    for world, p in sorted(pc.world_distribution().items(), key=lambda kv: -kv[1]):
        print(f"  {len(world)} trips booked with probability {p:.2f}")


if __name__ == "__main__":
    main()
