"""Tuple-independent (TID) probabilistic instances.

The simplest probabilistic relational model (ProbView, Lakshmanan et al.):
every fact is present independently with its own probability. Query
probability evaluation is #P-hard on arbitrary TIDs (Dalvi–Suciu) — the
paper's Theorem 1 shows it becomes linear-time on TIDs of bounded treewidth.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Mapping

from repro.events import EventSpace
from repro.instances.base import Fact, Instance
from repro.util import check, stable_rng


class TIDInstance:
    """An instance plus an independent presence probability per fact.

    >>> tid = TIDInstance()
    >>> _ = tid.add(Fact("R", (1,)), 0.5)
    >>> tid.probability(Fact("R", (1,)))
    0.5
    """

    def __init__(self, rows: Mapping[Fact, float] | Iterable[tuple[Fact, float]] = ()):
        self.instance = Instance()
        self._probabilities: dict[Fact, float] = {}
        items = rows.items() if isinstance(rows, Mapping) else rows
        for f, p in items:
            self.add(f, p)

    def add(self, f: Fact, probability: float) -> Fact:
        """Insert fact ``f`` with the given presence probability."""
        check(0.0 <= probability <= 1.0, f"probability of {f!r} must be in [0,1]")
        self.instance.add(f)
        self._probabilities[f] = float(probability)
        return f

    def probability(self, f: Fact) -> float:
        """Return the presence probability of ``f``."""
        check(f in self._probabilities, f"unknown fact {f!r}")
        return self._probabilities[f]

    def facts(self) -> list[Fact]:
        """Return the facts in insertion order."""
        return self.instance.facts()

    def __len__(self) -> int:
        return len(self.instance)

    def event_space(self) -> EventSpace:
        """Return the event space with one independent event per fact.

        Event names follow :attr:`repro.instances.base.Fact.variable_name`,
        the convention the lineage engine uses for its circuit leaves.
        """
        return EventSpace(
            {f.variable_name: p for f, p in self._probabilities.items()}
        )

    # ------------------------------------------------------------------ #
    # possible-world semantics

    def possible_worlds(self) -> Iterator[tuple[Instance, float]]:
        """Enumerate ``(world, probability)`` pairs — exponential oracle."""
        facts = self.facts()
        check(len(facts) <= 20, "possible-world enumeration limited to 20 facts")
        for included in itertools.product([False, True], repeat=len(facts)):
            world = Instance(f for f, keep in zip(facts, included) if keep)
            weight = 1.0
            for f, keep in zip(facts, included):
                p = self._probabilities[f]
                weight *= p if keep else 1.0 - p
            yield world, weight

    def world_probability(self, world: Instance) -> float:
        """Return the probability of one specific world."""
        weight = 1.0
        for f in self.facts():
            p = self._probabilities[f]
            weight *= p if f in world else 1.0 - p
        return weight

    def sample_world(self, seed: int | None = None) -> Instance:
        """Draw a world at random (used by Monte-Carlo baselines)."""
        rng = stable_rng(seed)
        return Instance(f for f in self.facts() if rng.random() < self._probabilities[f])

    def world_sampler(self, seed: int | None = None):
        """Return a callable producing a fresh random world per call."""
        rng = stable_rng(seed)
        facts = self.facts()
        probabilities = self._probabilities

        def draw() -> Instance:
            return Instance(f for f in facts if rng.random() < probabilities[f])

        return draw

    def treewidth_upper_bound(self, heuristic: str = "min_fill") -> int:
        """Treewidth (heuristic) of the underlying instance — Theorem 1's notion."""
        return self.instance.treewidth_upper_bound(heuristic)

    def __repr__(self) -> str:
        return f"TIDInstance(facts={len(self.instance)})"
