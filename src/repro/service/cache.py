"""Result cache and latency accounting for the query service.

A served marginal is a pure function of ``(plan_digest, valuation_hash)``:
the digest pins the exact wire bytes of the compiled plan and the
valuation hash pins the float64 row it was evaluated under, so a cached
result can never go stale semantically. The cache is therefore bounded
only operationally — an LRU entry cap for memory and an optional TTL for
operators who want eventual re-evaluation (e.g. to re-warm a redeployed
worker fleet). Hit/miss/eviction/expiry counters feed ``/stats``.

:class:`LatencyHistogram` is the per-endpoint latency record behind the
``/stats`` endpoint: fixed power-of-two millisecond buckets, so observing
a sample is O(1) and percentiles are bucket-upper-bound approximations —
exactly the resolution a regression gate needs, at zero allocation per
request.
"""

from __future__ import annotations

import hashlib
import math
import struct
import time
from bisect import bisect_left
from collections import OrderedDict

from repro.util import check

#: Default LRU entry cap (``REPRO_SERVICE_CACHE_SIZE`` overrides).
DEFAULT_CACHE_SIZE = 4096

#: Histogram bucket upper bounds, in milliseconds; one overflow bucket
#: follows the last bound.
BUCKET_BOUNDS_MS = (
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
    256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
)


def valuation_hash(row) -> str:
    """Content hash of one marginal row: float64-packed, order-sensitive.

    The row is packed exactly as the batch kernels will consume it
    (little-endian float64 in slot order), so two rows hash equal iff they
    produce bit-identical matrix rows — the identity the result cache and
    the coalescer's row dedup both key on.
    """
    values = [float(v) for v in row]
    packed = struct.pack(f"<{len(values)}d", *values)
    return hashlib.sha256(packed).hexdigest()[:32]


class ResultCache:
    """LRU + TTL map from ``(plan_digest, valuation_hash)`` to a marginal."""

    def __init__(self, max_entries: int = DEFAULT_CACHE_SIZE,
                 ttl: float | None = None):
        check(int(max_entries) >= 0, "cache size must be non-negative")
        check(ttl is None or ttl > 0, "cache TTL must be positive (or None)")
        self.max_entries = int(max_entries)
        self.ttl = ttl
        self._entries: OrderedDict = OrderedDict()  # key -> (value, stored_at)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        """The cached value for ``key``, or ``None`` (counted as a miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        value, stored_at = entry
        if self.ttl is not None and time.monotonic() - stored_at > self.ttl:
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        """Store ``value`` under ``key``, evicting least-recently-used."""
        if self.max_entries == 0:
            return
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        entries[key] = (value, time.monotonic())
        while len(entries) > self.max_entries:
            entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def stats(self) -> dict:
        """Counters + configuration, for the ``/stats`` endpoint."""
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "ttl_seconds": self.ttl,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }


class LatencyHistogram:
    """Fixed-bucket latency histogram with bucket-bound percentiles."""

    __slots__ = ("counts", "count", "errors", "total_ms", "max_ms")

    def __init__(self):
        self.counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)
        self.count = 0
        self.errors = 0
        self.total_ms = 0.0
        self.max_ms = 0.0

    def observe(self, seconds: float, error: bool = False) -> None:
        """Record one request's wall time (and whether it errored)."""
        ms = seconds * 1e3
        self.count += 1
        self.total_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms
        if error:
            self.errors += 1
        self.counts[bisect_left(BUCKET_BOUNDS_MS, ms)] += 1

    def percentile(self, q: float) -> float:
        """Upper bucket bound covering quantile ``q`` (0..1]; 0 when empty.

        The overflow bucket reports the exact observed maximum instead of
        a bound.
        """
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        running = 0
        for i, n in enumerate(self.counts):
            running += n
            if running >= target:
                if i < len(BUCKET_BOUNDS_MS):
                    return BUCKET_BOUNDS_MS[i]
                return self.max_ms
        return self.max_ms

    def stats(self) -> dict:
        """Summary for the ``/stats`` endpoint."""
        return {
            "count": self.count,
            "errors": self.errors,
            "mean_ms": (self.total_ms / self.count) if self.count else 0.0,
            "p50_ms": self.percentile(0.50),
            "p99_ms": self.percentile(0.99),
            "max_ms": self.max_ms,
        }
