"""The probabilistic chase: reasoning under soft rules (paper Section 2.3).

The paper's desired semantics — explicitly contrasted with Gottlob et al.'s
probabilistic Datalog+/−: a rule with probability p "applies, on average, in
p of the cases", i.e. every *trigger* (body match) fires independently with
probability p. We implement both semantics:

- ``TRIGGER_LEVEL``  (the paper's): one fresh independent event per trigger;
- ``RULE_LEVEL``     (the [25] baseline): one event per rule — the rule is
  always true or always false.

The chase produces a **pcc-instance**: each derived fact is annotated by the
disjunction, over its derivations, of (trigger event ∧ body-fact gates).
Cyclic/multiple derivations are handled naturally by the circuit OR; chase
termination is bounded rounds (weakly acyclic rule sets terminate on their
own). Query answering is then Theorem 2 machinery: lineage + message passing
(or enumeration for small event spaces).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.instances.base import Fact, Instance
from repro.instances.pcc import PCCInstance
from repro.queries.cq import ConjunctiveQuery, Variable
from repro.rules.tgds import ExistentialRule
from repro.util import check

TRIGGER_LEVEL = "trigger"
RULE_LEVEL = "rule"


@dataclass(frozen=True)
class ProbabilisticRule:
    """An existential rule firing with probability ``probability``."""

    rule: ExistentialRule
    probability: float

    def __post_init__(self):
        check(0.0 <= self.probability <= 1.0, "rule probability must be in [0,1]")

    def __repr__(self) -> str:
        return f"[{self.probability}] {self.rule!r}"


class _DeterministicNull:
    """Fresh null with a stable, derivation-determined name."""

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other):
        return isinstance(other, _DeterministicNull) and self.name == other.name

    def __hash__(self):
        return hash(("null", self.name))


def probabilistic_chase(
    instance: Instance,
    rules: Iterable[ProbabilisticRule],
    rounds: int = 3,
    semantics: str = TRIGGER_LEVEL,
    base_probabilities: Mapping[Fact, float] | None = None,
) -> PCCInstance:
    """Run the probabilistic chase for a bounded number of rounds.

    ``base_probabilities`` optionally makes the input facts themselves
    uncertain (one independent event each); facts not listed are certain.
    Returns the pcc-instance over base-fact events plus firing events.
    """
    check(semantics in (TRIGGER_LEVEL, RULE_LEVEL), "unknown semantics")
    rules = list(rules)
    pcc = PCCInstance()
    base_probabilities = dict(base_probabilities or {})

    # Base facts.
    for f in instance.facts():
        if f in base_probabilities:
            event = pcc.add_event(f.variable_name, base_probabilities[f])
            pcc.add(f, pcc.circuit.variable(event))
        else:
            pcc.add(f, pcc.circuit.true())

    rule_events: dict[int, str] = {}
    if semantics == RULE_LEVEL:
        for index, pr in enumerate(rules):
            name = pcc.add_event(f"rule:{index}", pr.probability)
            rule_events[index] = name

    fired: set[tuple] = set()
    trigger_counter = 0
    for round_index in range(rounds):
        new_facts: list[tuple[Fact, int]] = []
        for rule_index, pr in enumerate(rules):
            body_query = ConjunctiveQuery(pr.rule.body)
            for witness, binding in _witnesses_with_bindings(body_query, pcc.instance):
                trigger_key = (rule_index, witness)
                if trigger_key in fired:
                    continue
                fired.add(trigger_key)
                trigger_counter += 1
                if semantics == TRIGGER_LEVEL:
                    event = pcc.add_event(
                        f"trig:{rule_index}:{trigger_counter}", pr.probability
                    )
                    firing_gate = pcc.circuit.variable(event)
                else:
                    firing_gate = pcc.circuit.variable(rule_events[rule_index])
                body_gate = pcc.circuit.and_gate(
                    [firing_gate] + [pcc.gate_of(f) for f in witness]
                )
                extended = dict(binding)
                for v in pr.rule.existential_variables():
                    extended[v] = _DeterministicNull(
                        f"_{v.name}#{rule_index}.{trigger_counter}"
                    )
                for head_atom in pr.rule.head:
                    args = tuple(
                        extended[t] if isinstance(t, Variable) else t
                        for t in head_atom.terms
                    )
                    new_facts.append((Fact(head_atom.relation, args), body_gate))
        if not new_facts:
            break
        for f, gate in new_facts:
            if f in pcc.instance:
                merged = pcc.circuit.or_gate([pcc.gate_of(f), gate])
                pcc.add(f, merged)  # re-annotate with the disjunction
            else:
                pcc.add(f, gate)
    return pcc


def _witnesses_with_bindings(query: ConjunctiveQuery, instance: Instance):
    """Yield ``(witness facts, binding)`` pairs for each body homomorphism."""
    for binding in query.homomorphisms(instance):
        witness = tuple(
            Fact(a.relation, tuple(binding.get(t, t) for t in a.terms))
            for a in query.atoms
        )
        yield witness, binding


def query_probability_enumerate(pcc: PCCInstance, query) -> float:
    """Reference query probability on the chased instance (enumeration)."""
    from repro.baselines.enumeration import pcc_probability_enumerate

    return pcc_probability_enumerate(query, pcc)


def derived_fact_probability(pcc: PCCInstance, f: Fact) -> float:
    """Marginal probability of a derived fact (enumeration oracle)."""
    return pcc.fact_probability_enumerate(f)
