"""E20 — certain answers under primary keys: trichotomy routing, measured.

Exercises the CQA engine (:mod:`repro.cqa`) on generated key-violating
instances (:func:`repro.workloads.key_violation_instance`) and pins both
sides of the trichotomy story:

* **Correctness** — over a grid of violation rates and seeds, each of the
  three canonical Koutris–Wijsen queries (FO-rewritable, PTIME,
  coNP-complete) is answered by the routed engine *and* by the
  brute-force all-repairs oracle; every answer must bit-match.  The
  classifier must place each canonical query in its published class, and
  stay there under every permutation of the query's atoms.

* **FO never compiles** — the first-order rewriting answers directly
  against the instance, so ``compile_stats()`` must not move while the FO
  query is routed (the acceptance criterion of the CQA issue).

* **Performance** — at growing violation rates, the FO rewriting is timed
  against the circuit fallback (which encodes "the query holds in a
  uniformly random repair" and thresholds the probability) and against
  the repairs oracle.  The oracle enumerates ``prod(|block|)`` repairs —
  exponential in the violating blocks — so its column explodes while the
  rewriting stays flat; the ``fo_speedup_vs_circuit`` headline records
  how much the routed path saves on a larger instance where the oracle
  cannot run at all.

Writes ``BENCH_cqa.json`` at the repo root; the committed copy is the
baseline that ``check_regression.py`` gates in CI.  The correctness
booleans are machine-independent and always gate; the speedup is
wall-clock and report-only (it holds at ~10x+ with or without numpy —
both paths are pure python at these sizes — but stays ungated like every
other timing headline on the 1-CPU runners).
"""

from __future__ import annotations

import itertools
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.circuits import compile_stats
from repro.cqa import certain_answers, certain_oracle, classify, repair_count
from repro.queries import ConjunctiveQuery
from repro.workloads import cqa_trichotomy_queries, key_violation_instance

PUBLISHED_CLASSES = {"fo": "fo", "ptime": "ptime", "conp": "conp"}

#: Correctness grid: 16 blocks per instance keeps the oracle's
#: ``prod(|block|) <= 2^16`` repairs enumerable at every rate.
GRID_KEYS = 8
GRID_RATES = (0.0, 0.25, 0.5)
GRID_SEEDS = (0, 1, 2, 3, 4)

#: Timing grid: rates for the three-way method comparison (same size as
#: the correctness grid, so the oracle column can actually run).
TIME_RATES = (0.0, 0.2, 0.4, 0.6, 0.8)
TIME_KEYS = 8
TIME_SEED = 11
REPEATS = 3

#: The larger instance where only the routed path and the circuit
#: fallback are feasible (the oracle would need ~2^60 repairs).
LARGE_KEYS = 300
LARGE_RATE = 0.3
LARGE_SEED = 7


def _best(fn, repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _classifier_stable(queries: dict[str, ConjunctiveQuery], keys) -> bool:
    """Does every atom permutation of every query land in the same class?"""
    for name, query in queries.items():
        for perm in itertools.permutations(query.atoms):
            reordered = ConjunctiveQuery(tuple(perm))
            if classify(reordered, keys).trichotomy != PUBLISHED_CLASSES[name]:
                return False
    return True


def run() -> dict:
    queries = cqa_trichotomy_queries()
    result: dict = {"grid": []}

    # --- classifier: published classes, stable under atom reordering ----
    _, keys = key_violation_instance(2, 0.0, seed=0)
    placed = {
        name: classify(query, keys).trichotomy for name, query in queries.items()
    }
    result["classes"] = placed
    result["classifier_matches_published_classes"] = (
        placed == PUBLISHED_CLASSES and _classifier_stable(queries, keys)
    )
    print("classifier: " + ", ".join(f"{k}->{v}" for k, v in placed.items())
          + (" (stable under atom reordering)"
             if result["classifier_matches_published_classes"] else " MISMATCH"))

    # --- correctness: routed engine vs all-repairs oracle ---------------
    matches = {name: True for name in queries}
    checks = 0
    for rate in GRID_RATES:
        for seed in GRID_SEEDS:
            instance, keys = key_violation_instance(GRID_KEYS, rate, seed=seed)
            cell = {"rate": rate, "seed": seed,
                    "repairs": repair_count(instance, keys)}
            for name, query in queries.items():
                routed = certain_answers(query, instance, keys)
                oracle = certain_oracle(query, instance, keys)
                cell[name] = routed
                checks += 1
                if routed != oracle:
                    matches[name] = False
            result["grid"].append(cell)
    for name in queries:
        result[f"{name}_matches_oracle"] = matches[name]
    print(f"correctness: {checks} routed-vs-oracle checks over "
          f"rates {GRID_RATES} x seeds {GRID_SEEDS}: "
          + ("all bit-match" if all(matches.values())
             else f"MISMATCH {matches}"))

    # --- FO answers without touching the circuit pipeline ---------------
    instance, keys = key_violation_instance(GRID_KEYS, 0.5, seed=9)
    before = dict(compile_stats(lifetime=True))
    fo_answer = certain_answers(queries["fo"], instance, keys)
    after = dict(compile_stats(lifetime=True))
    result["fo_no_circuit_compiles"] = before == after
    print(f"fo route: answer={fo_answer}, compile_stats "
          + ("unchanged (no circuits built)"
             if result["fo_no_circuit_compiles"] else f"MOVED {before} -> {after}"))

    # --- timings at growing violation rates ------------------------------
    result["rates"] = []
    print(f"\n{'rate':<6} {'repairs':>9} {'rewrite_s':>10} "
          f"{'circuit_s':>10} {'oracle_s':>10}")
    fo = queries["fo"]
    for rate in TIME_RATES:
        instance, keys = key_violation_instance(TIME_KEYS, rate, seed=TIME_SEED)
        count = repair_count(instance, keys)
        entry = {
            "rate": rate,
            "repairs": count,
            "rewrite_seconds": _best(
                lambda: certain_answers(fo, instance, keys, method="rewrite")
            ),
            "circuit_seconds": _best(
                lambda: certain_answers(fo, instance, keys, method="circuit")
            ),
            "oracle_seconds": _best(
                lambda: certain_oracle(fo, instance, keys)
            ),
        }
        result["rates"].append(entry)
        print(f"{rate:<6} {count:>9} {entry['rewrite_seconds']:>10.5f} "
              f"{entry['circuit_seconds']:>10.5f} {entry['oracle_seconds']:>10.5f}")

    # --- the large instance: routing vs the circuit fallback -------------
    instance, keys = key_violation_instance(LARGE_KEYS, LARGE_RATE, seed=LARGE_SEED)
    rewrite_s = _best(lambda: certain_answers(fo, instance, keys, method="rewrite"))
    circuit_s = _best(lambda: certain_answers(fo, instance, keys, method="circuit"))
    result["large"] = {
        "n_keys": LARGE_KEYS,
        "rate": LARGE_RATE,
        "facts": len(instance),
        "rewrite_seconds": rewrite_s,
        "circuit_seconds": circuit_s,
    }
    result["fo_speedup_vs_circuit"] = circuit_s / max(rewrite_s, 1e-9)
    print(f"\nlarge ({LARGE_KEYS} keys, {len(instance)} facts, oracle infeasible): "
          f"rewrite {rewrite_s:.4f}s, circuit fallback {circuit_s:.4f}s, "
          f"speedup {result['fo_speedup_vs_circuit']:.1f}x")
    return result


def main() -> None:
    result = run()
    out = Path(__file__).resolve().parents[1] / "BENCH_cqa.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out}")
    print("targets: classifier in published classes, every routed answer "
          "bit-matches the oracle, FO compiles no circuits")


if __name__ == "__main__":
    main()
