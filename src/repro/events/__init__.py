"""Boolean events, propositional formulas, and independent probability spaces.

This is substrate S1 of DESIGN.md: the annotation language of c-instances and
pc-instances, and the event vocabulary shared by PrXML documents, conditioning
and the probabilistic chase.
"""

from repro.events.formulas import (
    FALSE,
    TRUE,
    And,
    Const,
    Formula,
    Not,
    Or,
    Valuation,
    Var,
    conj,
    disj,
    literal,
    var,
)
from repro.events.space import EventSpace

__all__ = [
    "And",
    "Const",
    "EventSpace",
    "FALSE",
    "Formula",
    "Not",
    "Or",
    "TRUE",
    "Valuation",
    "Var",
    "conj",
    "disj",
    "literal",
    "var",
]
