"""Baselines the structural approach is compared against (S13)."""

from repro.baselines.enumeration import (
    pc_probability_enumerate,
    pcc_probability_enumerate,
    tid_certain,
    tid_possible,
    tid_probability_enumerate,
)
from repro.baselines.sampling import (
    karp_luby_probability,
    monte_carlo_probability,
    required_samples,
)

__all__ = [
    "karp_luby_probability",
    "monte_carlo_probability",
    "pc_probability_enumerate",
    "pcc_probability_enumerate",
    "required_samples",
    "tid_certain",
    "tid_possible",
    "tid_probability_enumerate",
]
