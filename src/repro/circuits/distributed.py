"""Distributed shard execution over wire-serialized circuit plans: stage 5.

The sharded worker pool (:mod:`repro.circuits.parallel`, fourth stage) is
bounded by one machine. This module fans the *same* deterministic shards out
over TCP so any number of hosts can chew on one batch or Monte-Carlo run:

- **Wire format** — :func:`plan_to_bytes` / :func:`plan_from_bytes` pack a
  compiled circuit's int32 CSR buffers, its level schedule, and the metadata
  a worker needs (``size``/``output``/``n_vars``) into a self-describing,
  versioned, CRC-checksummed binary blob (layout table in
  ``ARCHITECTURE.md``). Corrupted, truncated, or wrong-version payloads are
  rejected with :class:`~repro.util.ReproError` before any evaluation can
  happen. Packing and unpacking work with or without numpy (the pure-python
  path uses :mod:`array`), so a numpy-less host can still decode and
  evaluate a plan with the scalar interpreter.
- **Protocol** — length-prefixed frames over TCP (``uint32`` length, one
  message-kind byte, a JSON header, a binary blob). A coordinator publishes
  the plan (and, for Karp–Luby, the witness tables) **once per connection**,
  then streams tiny shard descriptors; workers answer with hit counts or
  output slices. :class:`WorkerServer` is the worker side; the CLI exposes
  it as ``repro-worker serve`` / ``python -m repro serve``.
- **Coordinator** — an :mod:`asyncio` driver per call: it connects to every
  host in the routing knob, pumps shard descriptors over each connection,
  **retries a shard on worker disconnect** (on another worker, or locally
  when none remain), and merges results in deterministic shard order. The
  shard decomposition and seeding are exactly those of
  :mod:`repro.circuits.parallel` — ``(seed, shard_index, count)`` — so a
  fixed seed gives **bit-identical estimates at 0, 1, 2 or N hosts**, and
  identical again after a serialize/deserialize round trip of the plan.

Knob: ``hosts=`` on the entry points (and on the sampling baselines),
defaulting to the process-wide :func:`distributed_hosts` (set with
:func:`set_distributed_hosts`, the scoped :func:`distributed_hosts_set`,
the ``REPRO_DISTRIBUTED_HOSTS`` environment variable — a comma-separated
``host:port`` list — or the CLI ``--hosts`` flag). An empty host list means
"stay local": every entry point then defers to the worker pool / in-process
kernels, so the five execution tiers degrade gracefully top to bottom.
Unreachable hosts are warned about once per process and skipped; a run
whose every worker dies still completes locally with identical results.
"""

from __future__ import annotations

import asyncio
import json
import os
import struct
import sys
import warnings
import zlib
from contextlib import contextmanager

from repro.circuits import compiled as _compiled
from repro.circuits import parallel as _parallel
from repro.circuits.compiled import numpy_module
from repro.util import ReproError, check

# --------------------------------------------------------------------------- #
# wire format: versioned, checksummed plan serialization

#: Magic bytes opening every wire blob (``R``\ epro ``C``\ ircuit ``P``\ lan).
WIRE_MAGIC = b"RCP1"

#: Version of the wire layout; bumped on any incompatible change.
WIRE_VERSION = 1

#: Fixed wire header: magic, version, flags, crc32(meta+payload), meta
#: length, payload length — little-endian, 24 bytes.
_HEADER = struct.Struct("<4sHHIIQ")

#: Section type codes: ``i`` int32, ``f`` float32, ``d`` float64.
_DTYPES = {"i": ("<i4", 4), "f": ("<f4", 4), "d": ("<f8", 8)}

#: Hard cap on a single protocol frame / wire blob (guards a corrupt length
#: prefix from allocating unbounded memory).
MAX_FRAME_BYTES = 1 << 31


def _values_to_bytes(typecode: str, values) -> bytes:
    """Little-endian bytes of a flat numeric sequence, with or without numpy."""
    np = numpy_module()
    dtype, itemsize = _DTYPES[typecode]
    if np is not None:
        return np.ascontiguousarray(values, dtype=dtype).reshape(-1).tobytes()
    import array

    arr = array.array(typecode, [v for v in values])
    check(arr.itemsize == itemsize, f"platform array('{typecode}') width unsupported")
    if sys.byteorder == "big":  # pragma: no cover - little-endian dev hosts
        arr.byteswap()
    return arr.tobytes()


def _values_from_bytes(typecode: str, raw: bytes) -> list:
    """Inverse of :func:`_values_to_bytes`; always returns a python list."""
    np = numpy_module()
    dtype, itemsize = _DTYPES[typecode]
    check(len(raw) % itemsize == 0, "wire section length is not a whole item count")
    if np is not None:
        return np.frombuffer(raw, dtype=dtype).tolist()
    import array

    arr = array.array(typecode)
    arr.frombytes(raw)
    if sys.byteorder == "big":  # pragma: no cover - little-endian dev hosts
        arr.byteswap()
    return arr.tolist()


def _pack_blob(meta: dict, sections: list[tuple[str, str, object]]) -> bytes:
    """Pack named numeric sections + JSON metadata into one checksummed blob.

    ``sections`` is ``[(name, typecode, values), ...]``; the JSON header
    gains a ``sections`` entry of ``[name, typecode, offset, nbytes]`` rows
    so the blob is self-describing — a reader needs nothing but this module.
    """
    payload_parts: list[bytes] = []
    directory = []
    offset = 0
    for name, typecode, values in sections:
        raw = _values_to_bytes(typecode, values)
        directory.append([name, typecode, offset, len(raw)])
        payload_parts.append(raw)
        offset += len(raw)
    payload = b"".join(payload_parts)
    meta = dict(meta, sections=directory)
    meta_bytes = json.dumps(meta, separators=(",", ":"), sort_keys=True).encode()
    crc = zlib.crc32(payload, zlib.crc32(meta_bytes)) & 0xFFFFFFFF
    header = _HEADER.pack(
        WIRE_MAGIC, WIRE_VERSION, 0, crc, len(meta_bytes), len(payload)
    )
    return header + meta_bytes + payload


def _unpack_blob(data: bytes) -> tuple[dict, dict[str, list]]:
    """Validate and unpack a :func:`_pack_blob` blob; raises on any damage."""
    check(isinstance(data, (bytes, bytearray, memoryview)), "wire payload must be bytes")
    data = bytes(data)
    check(
        len(data) >= _HEADER.size,
        f"wire payload truncated: {len(data)} bytes is shorter than the header",
    )
    magic, version, _flags, crc, meta_len, payload_len = _HEADER.unpack_from(data)
    check(magic == WIRE_MAGIC, f"not a circuit-plan wire payload (magic {magic!r})")
    check(
        version == WIRE_VERSION,
        f"unsupported wire version {version} (this build speaks {WIRE_VERSION})",
    )
    expected = _HEADER.size + meta_len + payload_len
    check(
        len(data) == expected,
        f"wire payload truncated or padded: expected {expected} bytes, got {len(data)}",
    )
    meta_bytes = data[_HEADER.size : _HEADER.size + meta_len]
    payload = data[_HEADER.size + meta_len :]
    actual = zlib.crc32(payload, zlib.crc32(meta_bytes)) & 0xFFFFFFFF
    check(actual == crc, "wire payload corrupt: checksum mismatch")
    try:
        meta = json.loads(meta_bytes)
    except ValueError as exc:  # pragma: no cover - crc catches random damage
        raise ReproError(f"wire metadata is not valid JSON: {exc}") from None
    out: dict[str, list] = {}
    for name, typecode, offset, nbytes in meta.pop("sections"):
        check(typecode in _DTYPES, f"unknown wire section type {typecode!r}")
        check(
            0 <= offset and offset + nbytes <= len(payload),
            f"wire section {name!r} overruns the payload",
        )
        out[name] = _values_from_bytes(typecode, payload[offset : offset + nbytes])
    return meta, out


def plan_to_bytes(compiled) -> bytes:
    """Serialize a compiled circuit's batch plan to the versioned wire format.

    Packs the four int32 CSR buffers, the per-gate level schedule
    (:func:`repro.circuits.compiled.gate_levels` — redundant with the CSR
    arrays, carried as an integrity check a receiver re-verifies), and the
    ``size``/``output``/``n_vars`` metadata. The result is cached on the
    compiled circuit, so repeated connections reuse one encoding.
    """
    compiled = _compiled.compile_circuit(compiled)
    cached = compiled._wire_cache
    if cached is None:
        levels = _compiled.gate_levels(
            compiled.kinds, compiled.offsets, compiled.indices
        )
        cached = _pack_blob(
            {
                "kind": "plan",
                "size": compiled.size,
                "output": compiled.output,
                "n_vars": len(compiled.var_names),
            },
            [
                ("kinds", "i", compiled.kinds),
                ("offsets", "i", compiled.offsets),
                ("indices", "i", compiled.indices),
                ("var_slot", "i", compiled.var_slot),
                ("levels", "i", levels),
            ],
        )
        compiled._wire_cache = cached
    return cached


def plan_checksum(plan_bytes: bytes) -> str:
    """Stable identifier of a wire plan (workers cache decoded plans by it)."""
    return f"{zlib.crc32(plan_bytes) & 0xFFFFFFFF:08x}-{len(plan_bytes)}"


class WirePlan:
    """A circuit plan decoded from the wire, ready to evaluate shards.

    Holds the CSR arrays as plain python lists (so a numpy-less worker can
    interpret them) and lowers them to the level-scheduled
    :class:`~repro.circuits.compiled._BatchPlan` on first use when numpy is
    importable. The level schedule shipped in the payload is re-verified
    against the CSR arrays on construction — a plan that decodes is a plan
    that evaluates.
    """

    __slots__ = ("size", "output", "n_vars", "kinds", "offsets", "indices",
                 "var_slot", "levels", "_plan")

    def __init__(self, meta: dict, sections: dict[str, list]):
        self.size = int(meta["size"])
        self.output = int(meta["output"])
        self.n_vars = int(meta["n_vars"])
        for name in ("kinds", "offsets", "indices", "var_slot", "levels"):
            check(name in sections, f"wire plan is missing the {name!r} section")
            setattr(self, name, sections[name])
        self._validate()
        self._plan = None

    def _validate(self) -> None:
        size = self.size
        check(size >= 1, "wire plan has no gates")
        check(
            len(self.kinds) == size
            and len(self.var_slot) == size
            and len(self.levels) == size
            and len(self.offsets) == size + 1,
            "wire plan sections disagree about the gate count",
        )
        check(0 <= self.output < size, "wire plan output gate out of range")
        check(self.offsets[0] == 0 and self.offsets[-1] == len(self.indices),
              "wire plan CSR offsets are inconsistent")
        for pos in range(size):
            check(
                self.offsets[pos] <= self.offsets[pos + 1],
                "wire plan CSR offsets are not monotone",
            )
            kind = self.kinds[pos]
            check(0 <= kind <= _compiled.K_OR, f"wire plan has unknown gate kind {kind}")
            if kind == _compiled.K_VAR:
                check(
                    0 <= self.var_slot[pos] < self.n_vars,
                    "wire plan variable slot out of range",
                )
        for child in self.indices:
            check(0 <= child < size, "wire plan gate input out of range")
        expected = _compiled.gate_levels(self.kinds, self.offsets, self.indices)
        check(
            expected == list(self.levels),
            "wire plan corrupt: level schedule does not match the CSR arrays",
        )

    # -- evaluation ------------------------------------------------------- #

    def batch_plan(self):
        """The level-scheduled numpy plan, built once; ``None`` without numpy."""
        if numpy_module() is None:
            return None
        if self._plan is None:
            self._plan = _compiled._BatchPlan(self)
        return self._plan

    def _interpret_row(self, slot_values, as_float: bool):
        """One scalar bottom-up pass over the CSR arrays (numpy-less path)."""
        kinds, offsets, indices, var_slot = (
            self.kinds, self.offsets, self.indices, self.var_slot,
        )
        values: list = [0] * self.size
        for pos in range(self.size):
            kind = kinds[pos]
            if kind == _compiled.K_VAR:
                value = slot_values[var_slot[pos]]
                value = float(value) if as_float else (1 if value else 0)
            elif kind == _compiled.K_AND:
                value = 1.0 if as_float else 1
                for j in range(offsets[pos], offsets[pos + 1]):
                    if as_float:
                        value *= values[indices[j]]
                    elif not values[indices[j]]:
                        value = 0
                        break
            elif kind == _compiled.K_OR:
                value = 0.0 if as_float else 0
                for j in range(offsets[pos], offsets[pos + 1]):
                    if as_float:
                        value += values[indices[j]]
                    elif values[indices[j]]:
                        value = 1
                        break
            elif kind == _compiled.K_NOT:
                child = values[indices[offsets[pos]]]
                value = 1.0 - child if as_float else 1 - child
            else:
                value = float(kind) if as_float else kind  # K_TRUE==1, K_FALSE==0
            values[pos] = value
        return values[self.output]

    def run_rows(self, rows, as_float: bool) -> list:
        """Evaluate an iterable of slot-value rows, one output per row."""
        rows = [list(row) for row in rows]  # copies rows drawn from shared buffers
        plan = self.batch_plan()
        if plan is not None:
            np = numpy_module()
            dtype = np.float64 if as_float else np.bool_
            matrix = np.asarray(rows, dtype=dtype)
            if matrix.ndim != 2:  # empty batch, or zero-variable circuit
                matrix = matrix.reshape(len(rows), self.n_vars)
            out = np.empty(matrix.shape[0], dtype=dtype)
            plan.run_into(matrix, out, as_float)
            return out.tolist()
        return [self._interpret_row(row, as_float) for row in rows]

    def mc_shard_hits(self, probs, seed: int, index: int, count: int) -> int:
        """Hit count of one deterministic ``(seed, index, count)`` MC shard.

        With numpy this is exactly
        :func:`repro.circuits.parallel._mc_shard_hits` on the decoded plan —
        bit-identical to the in-process and pool paths. Without numpy a
        scalar loop with its own deterministic stream runs instead (same
        estimator, different draws — matching the documented no-numpy tier).
        """
        np = numpy_module()
        if np is not None:
            probs32 = np.asarray(probs, dtype=np.float32)
            return _parallel._mc_shard_hits(
                np, self.batch_plan(), probs32, seed, index, count
            )
        import random

        rng = random.Random((int(seed) << 32) ^ int(index))
        hits = 0
        row = [0] * self.n_vars
        for _ in range(count):
            for i, p in enumerate(probs):
                row[i] = 1 if rng.random() < p else 0
            if self._interpret_row(row, as_float=False):
                hits += 1
        return hits


def plan_from_bytes(data: bytes) -> WirePlan:
    """Decode, verify and lower a :func:`plan_to_bytes` payload.

    Raises :class:`~repro.util.ReproError` for anything that is not a
    byte-exact, current-version plan: wrong magic, unsupported version,
    truncation, checksum mismatch, or internally inconsistent sections
    (including a level schedule that disagrees with the CSR arrays).
    """
    meta, sections = _unpack_blob(data)
    check(meta.get("kind") == "plan", "wire payload is not a circuit plan")
    return WirePlan(meta, sections)


def _tables_to_bytes(membership_rows, n_facts, probs, cumulative, total_weight):
    """Pack Karp–Luby witness tables with the same framing as plans."""
    flat = []
    for row in membership_rows:
        flat.extend(int(v) for v in row)
    return _pack_blob(
        {
            "kind": "tables",
            "n_witnesses": len(membership_rows),
            "n_facts": n_facts,
            "total_weight": float(total_weight),
        },
        [
            ("membership", "i", flat),
            ("probs", "d", probs),
            ("cumulative", "d", cumulative),
        ],
    )


class WireTables:
    """Decoded Karp–Luby witness tables (membership matrix + weights)."""

    __slots__ = ("n_witnesses", "n_facts", "total_weight", "membership",
                 "probs", "cumulative")

    def __init__(self, meta: dict, sections: dict[str, list]):
        self.n_witnesses = int(meta["n_witnesses"])
        self.n_facts = int(meta["n_facts"])
        self.total_weight = float(meta["total_weight"])
        check(
            len(sections["membership"]) == self.n_witnesses * self.n_facts
            and len(sections["probs"]) == self.n_facts
            and len(sections["cumulative"]) == self.n_witnesses,
            "wire tables sections disagree about their shape",
        )
        self.membership = sections["membership"]
        self.probs = sections["probs"]
        self.cumulative = sections["cumulative"]

    def kl_shard_hits(self, seed: int, index: int, count: int) -> int:
        np = numpy_module()
        if np is not None:
            membership = np.asarray(self.membership, dtype=np.int32).reshape(
                self.n_witnesses, self.n_facts
            )
            return _parallel._kl_shard_hits(
                np,
                membership,
                membership.sum(axis=1, dtype=np.int32),
                np.asarray(self.probs, dtype=np.float64),
                np.asarray(self.cumulative, dtype=np.float64),
                self.total_weight,
                seed,
                index,
                count,
            )
        import bisect
        import random

        rng = random.Random((int(seed) << 32) ^ int(index))
        n_facts = self.n_facts
        rows = [
            self.membership[w * n_facts : (w + 1) * n_facts]
            for w in range(self.n_witnesses)
        ]
        hits = 0
        for _ in range(count):
            chosen = min(
                bisect.bisect_left(self.cumulative, rng.random() * self.total_weight),
                self.n_witnesses - 1,
            )
            world = [1 if rng.random() < p else 0 for p in self.probs]
            for i, member in enumerate(rows[chosen]):
                if member:
                    world[i] = 1
            for w, row in enumerate(rows):
                if all(world[i] for i, member in enumerate(row) if member):
                    if w == chosen:
                        hits += 1
                    break
        return hits


def tables_from_bytes(data: bytes) -> WireTables:
    meta, sections = _unpack_blob(data)
    check(meta.get("kind") == "tables", "wire payload is not a witness table set")
    return WireTables(meta, sections)


# --------------------------------------------------------------------------- #
# routing knob

def _hosts_from_env() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_DISTRIBUTED_HOSTS", "")
    hosts = []
    for part in raw.replace(";", ",").split(","):
        part = part.strip()
        if not part:
            continue
        try:
            _parse_hostport(part)
        except ReproError:
            return ()  # one malformed entry disables the knob rather than half-working
        hosts.append(part)
    return tuple(hosts)


def _parse_hostport(spec: str) -> tuple[str, int]:
    host, sep, port = str(spec).strip().rpartition(":")
    check(bool(sep) and bool(host), f"host spec {spec!r} is not host:port")
    try:
        port_number = int(port)
    except ValueError:
        raise ReproError(f"host spec {spec!r} has a non-integer port") from None
    check(0 < port_number < 65536, f"host spec {spec!r} port out of range")
    return host, port_number


_HOSTS: tuple[str, ...] = _hosts_from_env()


def distributed_hosts() -> tuple[str, ...]:
    """The process-wide worker host list (empty = stay local, the default)."""
    return _HOSTS


def set_distributed_hosts(hosts) -> None:
    """Set the process-wide host list.

    Accepts ``None`` (clear), a comma-separated ``"host:port,host:port"``
    string, or an iterable of ``host:port`` strings; every entry is
    validated up front.
    """
    global _HOSTS
    if hosts is None:
        _HOSTS = ()
        return
    if isinstance(hosts, str):
        hosts = [part for part in hosts.replace(";", ",").split(",") if part.strip()]
    normalized = []
    for spec in hosts:
        _parse_hostport(spec)
        normalized.append(str(spec).strip())
    _HOSTS = tuple(normalized)


@contextmanager
def distributed_hosts_set(hosts):
    """Scope a :func:`set_distributed_hosts` change, restoring the previous."""
    previous = _HOSTS
    set_distributed_hosts(hosts)
    try:
        yield
    finally:
        set_distributed_hosts(previous)


def effective_hosts(hosts) -> tuple[str, ...]:
    """Resolve a per-call ``hosts`` argument against the process-wide knob.

    ``None`` defers to :func:`distributed_hosts`; an explicit empty list (or
    ``()``) forces local execution regardless of the knob.
    """
    if hosts is None:
        return _HOSTS
    if isinstance(hosts, str):
        hosts = [part for part in hosts.replace(";", ",").split(",") if part.strip()]
    return tuple(str(spec).strip() for spec in hosts)


def should_distribute(n_rows: int, hosts=None) -> bool:
    """Whether a matrix batch of ``n_rows`` should go over the wire."""
    return bool(effective_hosts(hosts)) and n_rows >= _parallel.PARALLEL_MIN_ROWS


_WARNED: set[str] = set()


def _warn_once(key: str, message: str) -> None:
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message + " (warning once per process)", RuntimeWarning, stacklevel=3)


# --------------------------------------------------------------------------- #
# protocol framing

MSG_HELLO = 1
MSG_PLAN = 2
MSG_TABLES = 3
MSG_TASK = 4
MSG_RESULT = 5
MSG_ERROR = 6
MSG_SHUTDOWN = 7

#: Seconds allowed for a TCP connect + handshake before a host is skipped.
CONNECT_TIMEOUT = 5.0

#: Upper bound on one matrix shard's payload, so a frame always fits the
#: uint32 length prefix with room to spare and workers never buffer more
#: than this per task.
MAX_SHARD_BYTES = 1 << 26


async def _send_message(writer, kind: int, meta: dict, blob: bytes = b"") -> None:
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode()
    payload = struct.pack("<BI", kind, len(meta_bytes)) + meta_bytes + blob
    check(
        len(payload) <= MAX_FRAME_BYTES,
        f"protocol frame of {len(payload)} bytes exceeds the wire limit",
    )
    writer.write(struct.pack("<I", len(payload)) + payload)
    await writer.drain()


async def _read_message(reader) -> tuple[int, dict, bytes]:
    raw = await reader.readexactly(4)
    (length,) = struct.unpack("<I", raw)
    if not 5 <= length <= MAX_FRAME_BYTES:
        raise ReproError(f"protocol frame length {length} out of bounds")
    payload = await reader.readexactly(length)
    kind, meta_len = struct.unpack_from("<BI", payload)
    if 5 + meta_len > length:
        raise ReproError("protocol frame header overruns the frame")
    meta = json.loads(payload[5 : 5 + meta_len])
    return kind, meta, payload[5 + meta_len :]


#: Exceptions that mean "this connection is gone", triggering a shard retry.
_CONNECTION_ERRORS = (
    ConnectionError,
    asyncio.IncompleteReadError,
    asyncio.TimeoutError,
    TimeoutError,
    OSError,
)


# --------------------------------------------------------------------------- #
# worker side

_WORKER_CACHE_LIMIT = 8


class WorkerServer:
    """The worker side of the protocol: serve shards over localhost/TCP.

    One instance serves any number of coordinator connections; decoded
    plans and witness tables are cached per process by checksum, so a
    coordinator reconnecting (or several coordinators sharing one circuit)
    pays the decode once. ``max_tasks`` is a fault-injection hook for tests
    and drills: the process dies abruptly (``os._exit``) when asked to run
    task ``max_tasks + 1``, simulating a mid-run crash.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_tasks: int | None = None):
        self.host = host
        self.port = port  # 0 = ephemeral; replaced by the bound port on start
        self.max_tasks = max_tasks
        self._executed = 0
        self._plans: dict[str, WirePlan] = {}
        self._tables: dict[str, WireTables] = {}
        self._server = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _cache_put(self, cache: dict, key: str, value) -> None:
        while len(cache) >= _WORKER_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        cache[key] = value

    async def _handle(self, reader, writer) -> None:
        try:
            await _send_message(
                writer, MSG_HELLO,
                {"version": WIRE_VERSION, "pid": os.getpid(),
                 "numpy": numpy_module() is not None},
            )
            while True:
                kind, meta, blob = await _read_message(reader)
                if kind == MSG_SHUTDOWN:
                    break
                if kind == MSG_PLAN:
                    key = meta["checksum"]
                    if key not in self._plans:
                        self._cache_put(self._plans, key, plan_from_bytes(blob))
                elif kind == MSG_TABLES:
                    key = meta["checksum"]
                    if key not in self._tables:
                        self._cache_put(self._tables, key, tables_from_bytes(blob))
                elif kind == MSG_TASK:
                    if self.max_tasks is not None and self._executed >= self.max_tasks:
                        os._exit(17)  # fault injection: die instead of answering
                    self._executed += 1
                    try:
                        rmeta, rblob = self._execute(meta, blob)
                    except Exception as exc:  # noqa: BLE001 - reported to coordinator
                        await _send_message(
                            writer, MSG_ERROR,
                            {"id": meta.get("id"),
                             "message": f"{type(exc).__name__}: {exc}"},
                        )
                    else:
                        await _send_message(writer, MSG_RESULT, rmeta, rblob)
                else:
                    raise ReproError(f"unexpected protocol message kind {kind}")
        except _CONNECTION_ERRORS:
            pass  # coordinator went away; nothing to answer
        except ReproError:
            pass  # malformed stream; drop the connection
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except _CONNECTION_ERRORS:  # pragma: no cover - teardown race
                pass

    def _execute(self, meta: dict, blob: bytes) -> tuple[dict, bytes]:
        op = meta["op"]
        task_id = meta["id"]
        if op == "mc":
            plan = self._plans.get(meta["plan"])
            check(plan is not None, "task references a plan this worker never got")
            probs = _values_from_bytes("f", blob)
            hits = plan.mc_shard_hits(probs, meta["seed"], meta["index"], meta["count"])
            return {"id": task_id, "hits": hits}, b""
        if op == "kl":
            tables = self._tables.get(meta["tables"])
            check(tables is not None, "task references tables this worker never got")
            hits = tables.kl_shard_hits(meta["seed"], meta["index"], meta["count"])
            return {"id": task_id, "hits": hits}, b""
        if op == "eval":
            plan = self._plans.get(meta["plan"])
            check(plan is not None, "task references a plan this worker never got")
            as_float = bool(meta["as_float"])
            rows = int(meta["rows"])
            itemsize = 8 if as_float else 1
            check(
                len(blob) == rows * plan.n_vars * itemsize,
                "eval task blob does not match its row count",
            )
            np = numpy_module()
            if np is not None:
                dtype = np.float64 if as_float else np.bool_
                matrix = np.frombuffer(blob, dtype=dtype).reshape(rows, plan.n_vars)
                out = np.empty(rows, dtype=dtype)
                plan.batch_plan().run_into(matrix, out, as_float)
                return {"id": task_id}, out.tobytes()
            values = (
                _values_from_bytes("d", blob)
                if as_float
                else [1 if b else 0 for b in blob]
            )
            n = plan.n_vars
            out_rows = plan.run_rows(
                [values[r * n : (r + 1) * n] for r in range(rows)], as_float
            )
            if as_float:
                return {"id": task_id}, _values_to_bytes("d", out_rows)
            return {"id": task_id}, bytes(1 if v else 0 for v in out_rows)
        raise ReproError(f"unknown distributed task op {op!r}")


class LocalWorker:
    """A ``repro serve`` worker subprocess spawned by :func:`spawn_local_worker`."""

    __slots__ = ("process", "host", "port")

    def __init__(self, process, host: str, port: int):
        self.process = process
        self.host = host
        self.port = port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def alive(self) -> bool:
        return self.process.poll() is None

    def wait_dead(self, timeout: float = 10.0) -> int:
        """Block until the process exits; returns its exit code."""
        return self.process.wait(timeout=timeout)

    def stop(self) -> None:
        """Terminate the worker and reap it (idempotent, escalates to kill)."""
        import subprocess

        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                self.process.kill()
                self.process.wait(timeout=5.0)
        if self.process.stdout is not None:
            self.process.stdout.close()


def spawn_local_worker(max_tasks: int | None = None,
                       startup_timeout: float = 30.0) -> LocalWorker:
    """Start a localhost shard worker subprocess and wait until it is ready.

    Runs ``python -m repro serve --port 0`` (the OS picks the port, so any
    number can coexist) with this process's ``repro`` package on the
    child's path, and blocks until the worker prints its
    ``repro-worker listening on host:port`` readiness line. The caller owns
    teardown (:meth:`LocalWorker.stop`). Tests and benchmarks share this
    one implementation of the spawn/readiness/teardown dance; ``max_tasks``
    passes the fault-injection hook through.
    """
    import re
    import subprocess
    import time
    from pathlib import Path

    import repro

    package_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [sys.executable, "-m", "repro", "serve", "--port", "0"]
    if max_tasks is not None:
        command += ["--max-tasks", str(max_tasks)]
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    deadline = time.monotonic() + startup_timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = re.search(r"listening on ([\w.\-]+):(\d+)", line)
        if match:
            return LocalWorker(process, match.group(1), int(match.group(2)))
    process.kill()
    process.wait(timeout=5.0)
    raise ReproError(f"worker never became ready (last output: {line!r})")


# --------------------------------------------------------------------------- #
# coordinator side

async def _open_worker(hostport: str, payloads):
    host, port = _parse_hostport(hostport)
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), CONNECT_TIMEOUT
    )
    try:
        kind, meta, _blob = await asyncio.wait_for(
            _read_message(reader), CONNECT_TIMEOUT
        )
        if kind != MSG_HELLO or meta.get("version") != WIRE_VERSION:
            raise ReproError(
                f"worker {hostport} speaks protocol "
                f"{meta.get('version')!r}, not {WIRE_VERSION}"
            )
        for msg_kind, msg_meta, msg_blob in payloads:
            await _send_message(writer, msg_kind, msg_meta, msg_blob)
    except BaseException:
        writer.close()
        raise
    return reader, writer


async def _coordinate(hosts, payloads, tasks, results: dict) -> None:
    """Pump ``tasks`` over every reachable host; fill ``results`` by id.

    Hosts are connected **concurrently** (one slow or blackholed host costs
    one ``CONNECT_TIMEOUT`` overall, not one per host); each connection
    gets the plan/tables payloads once, then tasks one at a time. A task's
    ``blob`` may be a zero-argument callable, built only at send time, so
    big matrix shards never exist all at once. A connection failure — or a
    worker *refusing* a shard with ``MSG_ERROR`` — requeues the in-flight
    shard for the next worker and drops that connection (retried result
    values are deterministic, so a shard that was silently completed before
    a disconnect re-executes to the same answer); tasks still unassigned
    when every connection has failed are left for the caller's local
    fallback, which also surfaces any real per-shard error. Results land
    keyed by task id, so no shard can be counted twice and the merge order
    is the caller's.
    """
    from collections import deque

    queue = deque(range(len(tasks)))
    attempts = await asyncio.gather(
        *(_open_worker(hostport, payloads) for hostport in hosts),
        return_exceptions=True,
    )
    connections = []
    for hostport, outcome in zip(hosts, attempts):
        if isinstance(outcome, BaseException):
            if not isinstance(outcome, _CONNECTION_ERRORS + (ReproError,)):
                raise outcome
            _warn_once(
                f"connect:{hostport}",
                f"distributed worker {hostport} unreachable ({outcome}); "
                "continuing without it",
            )
        else:
            connections.append(outcome)
    if not connections:
        return

    async def pump(reader, writer) -> None:
        while True:
            try:
                slot = queue.popleft()
            except IndexError:
                break
            task_id, meta, blob = tasks[slot]
            if task_id in results:
                continue
            try:
                payload = blob() if callable(blob) else blob
                await _send_message(writer, MSG_TASK, meta, payload)
                kind, rmeta, rblob = await _read_message(reader)
            except _CONNECTION_ERRORS:
                queue.appendleft(slot)  # retried elsewhere, or locally
                _warn_once(
                    "worker-died",
                    "a distributed worker disconnected mid-run; its shard "
                    "was requeued",
                )
                return
            if kind != MSG_RESULT or rmeta.get("id") != task_id:
                # MSG_ERROR (e.g. a cache-evicted plan on a shared worker)
                # or a mismatched stream: this worker cannot run the shard,
                # but another one — or the local fallback — can.
                queue.appendleft(slot)
                detail = rmeta.get("message") if kind == MSG_ERROR else "bad reply"
                _warn_once(
                    "worker-refused",
                    f"a distributed worker refused a shard ({detail}); "
                    "it was requeued",
                )
                return
            results[task_id] = (rmeta, rblob)
        try:
            await _send_message(writer, MSG_SHUTDOWN, {})
        except _CONNECTION_ERRORS:  # pragma: no cover - worker already gone
            pass

    outcomes = await asyncio.gather(
        *(pump(reader, writer) for reader, writer in connections),
        return_exceptions=True,
    )
    for reader, writer in connections:
        try:
            writer.close()
        except _CONNECTION_ERRORS:  # pragma: no cover - teardown race
            pass
    for outcome in outcomes:
        if isinstance(outcome, BaseException):
            raise outcome


def _run_distributed(hosts, payloads, tasks, run_local) -> list:
    """Execute wire tasks over ``hosts``, completing any remainder locally.

    ``tasks`` is ``[(task_id, meta, blob), ...]`` (``blob`` may be a
    callable, materialized per send); returns the per-task
    ``(result_meta, result_blob)`` pairs in task order — the deterministic
    merge order — regardless of which host (or the local fallback) ran each
    shard. Never loses a shard: anything the workers did not finish is
    evaluated in-process through ``run_local(meta)``. Safe to call from a
    thread that is itself inside an event loop: coordination then runs on a
    private loop in a helper thread instead of ``asyncio.run`` (which would
    refuse to nest).
    """
    results: dict = {}
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        asyncio.run(_coordinate(hosts, payloads, tasks, results))
    else:
        import threading

        failure: list[BaseException] = []

        def _runner() -> None:
            try:
                asyncio.run(_coordinate(hosts, payloads, tasks, results))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failure.append(exc)

        thread = threading.Thread(target=_runner, daemon=True)
        thread.start()
        thread.join()
        if failure:
            raise failure[0]
    for task_id, meta, _blob in tasks:
        if task_id not in results:
            results[task_id] = run_local(meta)
    return [results[task_id] for task_id, _meta, _blob in tasks]


# --------------------------------------------------------------------------- #
# entry points

def _plan_payload(compiled) -> tuple[bytes, str]:
    plan_bytes = plan_to_bytes(compiled)
    return plan_bytes, plan_checksum(plan_bytes)


def monte_carlo_hits(compiled, marginals, samples: int, seed: int = 0,
                     hosts=None, workers: int | None = None) -> int:
    """Monte-Carlo hit count, fanned out over distributed workers.

    The ``hosts=`` layer above :func:`repro.circuits.parallel.monte_carlo_hits`:
    the same ``(seed, shard_index, count)`` shard decomposition is streamed
    to remote workers that rebuilt the plan from its wire form, and the
    per-shard hit counts are summed in shard order — bit-identical to the
    in-process and pool paths for a fixed seed. With no effective hosts the
    call simply defers to the pool entry point (honouring ``workers=``).
    """
    hosts = effective_hosts(hosts)
    if not hosts:
        return _parallel.monte_carlo_hits(
            compiled, marginals, samples, seed=seed, workers=workers
        )
    check(samples > 0, "need at least one sample")
    compiled = _compiled.compile_circuit(compiled)
    seed = 0 if seed is None else int(seed)
    probs_blob = _values_to_bytes("f", list(marginals))
    plan_bytes, checksum = _plan_payload(compiled)
    decoded = plan_from_bytes(plan_bytes)  # local shards run the same wire plan

    tasks = [
        (
            slot,
            {"id": slot, "op": "mc", "plan": checksum,
             "seed": seed, "index": index, "count": count},
            probs_blob,
        )
        for slot, (index, count) in enumerate(_parallel._sample_shards(samples))
    ]

    def run_local(meta):
        probs = _values_from_bytes("f", probs_blob)
        hits = decoded.mc_shard_hits(probs, meta["seed"], meta["index"], meta["count"])
        return {"hits": hits}, b""

    results = _run_distributed(
        hosts, [(MSG_PLAN, {"checksum": checksum}, plan_bytes)], tasks, run_local
    )
    return sum(int(meta["hits"]) for meta, _blob in results)


def karp_luby_hits(membership, probs, weights, samples: int, seed: int = 0,
                   hosts=None, workers: int | None = None) -> int:
    """Karp–Luby trial count over distributed workers (see
    :func:`repro.circuits.parallel.karp_luby_hits` for the semantics)."""
    hosts = effective_hosts(hosts)
    if not hosts:
        return _parallel.karp_luby_hits(
            membership, probs, weights, samples, seed=seed, workers=workers
        )
    check(samples > 0, "need at least one sample")
    seed = 0 if seed is None else int(seed)
    membership_rows = [list(row) for row in membership]
    n_facts = len(membership_rows[0]) if membership_rows else 0
    probs_list = [float(p) for p in probs]
    cumulative = []
    total = 0.0
    for weight in weights:
        total += float(weight)
        cumulative.append(total)
    tables_bytes = _tables_to_bytes(
        membership_rows, n_facts, probs_list, cumulative, total
    )
    checksum = plan_checksum(tables_bytes)
    decoded = tables_from_bytes(tables_bytes)

    tasks = [
        (
            slot,
            {"id": slot, "op": "kl", "tables": checksum,
             "seed": seed, "index": index, "count": count},
            b"",
        )
        for slot, (index, count) in enumerate(_parallel._sample_shards(samples))
    ]

    def run_local(meta):
        return {"hits": decoded.kl_shard_hits(
            meta["seed"], meta["index"], meta["count"]
        )}, b""

    results = _run_distributed(
        hosts, [(MSG_TABLES, {"checksum": checksum}, tables_bytes)], tasks, run_local
    )
    return sum(int(meta["hits"]) for meta, _blob in results)


def _distributed_matrix_pass(compiled, matrix, as_float: bool, hosts):
    np = numpy_module()
    check(np is not None, "distributed matrix passes require numpy")
    hosts = effective_hosts(hosts)
    compiled = _compiled.compile_circuit(compiled)
    dtype = np.float64 if as_float else np.bool_
    matrix = np.ascontiguousarray(matrix, dtype=dtype)
    check(
        matrix.ndim == 2 and matrix.shape[1] == len(compiled.var_names),
        f"world matrix must be (n, {len(compiled.var_names)}), got {matrix.shape}",
    )
    n_rows = matrix.shape[0]
    out = np.empty(n_rows, dtype=dtype)
    if n_rows == 0:
        return out
    if not hosts:
        compiled.batch_plan().run_into(matrix, out, as_float)
        return out
    plan_bytes, checksum = _plan_payload(compiled)
    # Shard by host count, then re-split so no single shard's payload can
    # exceed MAX_SHARD_BYTES: frames stay far under the wire limit and a
    # worker never buffers more than one bounded slice. Blobs are callables
    # materialized per send, so the matrix is never duplicated wholesale.
    row_bytes = max(1, int(matrix.shape[1]) * matrix.dtype.itemsize)
    max_rows = max(1, MAX_SHARD_BYTES // row_bytes)
    shards: list[tuple[int, int]] = []
    for start, end in _parallel._row_shards(n_rows, max(1, len(hosts))):
        for split in range(start, end, max_rows):
            shards.append((split, min(split + max_rows, end)))
    tasks = [
        (
            slot,
            {"id": slot, "op": "eval", "plan": checksum, "as_float": as_float,
             "start": start, "rows": end - start},
            (lambda start=start, end=end: matrix[start:end].tobytes()),
        )
        for slot, (start, end) in enumerate(shards)
    ]

    def run_local(meta):
        start = meta["start"]
        rows = meta["rows"]
        shard_out = np.empty(rows, dtype=dtype)
        compiled.batch_plan().run_into(matrix[start : start + rows], shard_out, as_float)
        return meta, shard_out.tobytes()

    results = _run_distributed(
        hosts, [(MSG_PLAN, {"checksum": checksum}, plan_bytes)], tasks, run_local
    )
    for (slot, meta, _blob), (rmeta, rblob) in zip(tasks, results):
        start = meta["start"]
        rows = meta["rows"]
        check(
            len(rblob) == rows * out.dtype.itemsize,
            "distributed eval result has the wrong length",
        )
        out[start : start + rows] = np.frombuffer(rblob, dtype=dtype)
    return out


def evaluate_batch_distributed(compiled, matrix, hosts=None):
    """Boolean batch evaluation with row shards streamed to remote workers.

    The stage-5 analogue of
    :func:`repro.circuits.parallel.evaluate_batch_sharded`: same kernels on
    the same rows (after a wire round trip of the plan), so the result is
    bit-identical to the local paths. With no effective hosts the pass runs
    in-process.
    """
    return _distributed_matrix_pass(compiled, matrix, as_float=False, hosts=hosts)


def probability_batch_distributed(compiled, matrix, hosts=None):
    """The Theorem-1 float pass with row shards streamed to remote workers."""
    return _distributed_matrix_pass(compiled, matrix, as_float=True, hosts=hosts)
