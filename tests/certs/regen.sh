#!/bin/sh
# Regenerate the test-only TLS material in this directory.
#
# Everything here is throwaway localhost-only test fixture data — the CA
# key is committed on purpose so the fault drills can mint certificates
# deterministically. Never reuse any of it outside the test suite.
#
# Layout:
#   ca.pem / ca.key               — the test CA (~1000 years)
#   server.pem / server.key       — CA-signed, SAN IP:127.0.0.1 + DNS:localhost
#   client.pem / client.key       — CA-signed client certificate (mTLS)
#   expired.pem / expired.key     — CA-signed but already expired
#   selfsigned.pem / selfsigned.key — NOT CA-signed (the "bad cert" drill)
set -eu
cd "$(dirname "$0")"

DAYS=365000
SAN="subjectAltName=IP:127.0.0.1,DNS:localhost"

openssl req -x509 -newkey rsa:2048 -sha256 -nodes -days "$DAYS" \
    -subj "/CN=repro-test-ca" -keyout ca.key -out ca.pem \
    -addext "basicConstraints=critical,CA:TRUE"

openssl req -newkey rsa:2048 -sha256 -nodes \
    -subj "/CN=repro-test-worker" -keyout server.key -out server.csr \
    -addext "$SAN"
openssl x509 -req -in server.csr -CA ca.pem -CAkey ca.key -CAcreateserial \
    -days "$DAYS" -sha256 -copy_extensions copy -out server.pem

openssl req -newkey rsa:2048 -sha256 -nodes \
    -subj "/CN=repro-test-coordinator" -keyout client.key -out client.csr \
    -addext "$SAN"
openssl x509 -req -in client.csr -CA ca.pem -CAkey ca.key -CAcreateserial \
    -days "$DAYS" -sha256 -copy_extensions copy -out client.pem

openssl req -newkey rsa:2048 -sha256 -nodes \
    -subj "/CN=repro-test-expired" -keyout expired.key -out expired.csr \
    -addext "$SAN"
openssl x509 -req -in expired.csr -CA ca.pem -CAkey ca.key -CAcreateserial \
    -not_before 20200101000000Z -not_after 20200102000000Z \
    -sha256 -copy_extensions copy -out expired.pem

openssl req -x509 -newkey rsa:2048 -sha256 -nodes -days "$DAYS" \
    -subj "/CN=repro-test-selfsigned" -keyout selfsigned.key \
    -out selfsigned.pem -addext "$SAN"

rm -f server.csr client.csr expired.csr ca.srl
