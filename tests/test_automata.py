"""Tests for tree automata and the pattern-to-automaton bridge."""

import pytest

from repro.automata import (
    BinaryTree,
    PatternAutomaton,
    TreeAutomaton,
    decode_world,
    encode_world,
    leaf,
    node,
)
from repro.prxml import make_world, path_pattern, pattern, TreePattern
from repro.prxml.semantics import world_distribution
from repro.workloads import figure1_document


def parity_automaton() -> TreeAutomaton:
    """Accepts binary trees with an even number of 'a' symbols."""
    rules = {}
    for symbol, flip in (("a", 1), ("b", 0)):
        for left in (0, 1):
            for right in (0, 1):
                rules[(symbol, left, right)] = {(left + right + flip) % 2}
    return TreeAutomaton({0}, rules, {0})


def contains_a_automaton() -> TreeAutomaton:
    """Accepts binary trees containing at least one 'a' symbol."""
    rules = {}
    for l in (0, 1):
        for r in (0, 1):
            rules[("a", l, r)] = {1}
            rules[("b", l, r)] = {max(l, r)}
    return TreeAutomaton({0}, rules, {1})


def tree_aba() -> BinaryTree:
    return node("a", node("b", leaf(), leaf()), node("a", leaf(), leaf()))


class TestTreeAutomaton:
    def test_parity_accepts_even(self):
        assert parity_automaton().accepts(tree_aba())  # two a's

    def test_parity_rejects_odd(self):
        assert not parity_automaton().accepts(node("a", leaf(), leaf()))

    def test_contains_a(self):
        auto = contains_a_automaton()
        assert auto.accepts(node("b", node("a", leaf(), leaf()), leaf()))
        assert not auto.accepts(node("b", leaf(), leaf()))

    def test_reachable_states(self):
        states = parity_automaton().reachable_states(tree_aba())
        assert states == frozenset({0})

    def test_determinized_equivalence(self):
        auto = contains_a_automaton()
        det = auto.determinized(["a", "b"])
        trees = [
            tree_aba(),
            node("b", leaf(), leaf()),
            node("a", leaf(), leaf()),
            node("b", node("b", leaf(), leaf()), node("a", leaf(), leaf())),
        ]
        for t in trees:
            assert det.accepts(t) == auto.accepts(t)
            assert len(det.reachable_states(t)) == 1  # deterministic

    def test_complement(self):
        auto = contains_a_automaton().complemented(["a", "b"])
        assert auto.accepts(node("b", leaf(), leaf()))
        assert not auto.accepts(tree_aba())

    def test_product_intersection(self):
        both = parity_automaton().product(contains_a_automaton(), "intersection")
        assert both.accepts(tree_aba())  # two a's: even and nonempty
        assert not both.accepts(node("a", leaf(), leaf()))  # odd
        assert not both.accepts(node("b", leaf(), leaf()))  # no a

    def test_product_union(self):
        either = parity_automaton().product(contains_a_automaton(), "union")
        assert either.accepts(node("b", leaf(), leaf()))  # even (zero a's)
        assert either.accepts(node("a", leaf(), leaf()))  # contains a

    def test_emptiness(self):
        auto = contains_a_automaton()
        assert not auto.is_empty(["a", "b"])
        never = TreeAutomaton({0}, {("a", 0, 0): {0}}, {1})
        assert never.is_empty(["a"])


class TestEncoding:
    def test_roundtrip(self):
        world = make_world("r", [make_world("a", [make_world("x")]), make_world("b")])
        assert decode_world(encode_world(world)) == world

    def test_encoding_shape(self):
        world = make_world("r", [make_world("a"), make_world("b")])
        encoded = encode_world(world)
        assert encoded.symbol == "r"
        assert encoded.right.is_leaf()  # root has no siblings
        assert encoded.left.symbol == "a"
        assert encoded.left.right.symbol == "b"  # sibling chain

    def test_size(self):
        world = make_world("r", [make_world("a"), make_world("b")])
        # 3 labeled nodes + leaf markers.
        assert encode_world(world).size() == 7


class TestPatternBridge:
    @pytest.mark.parametrize(
        "labels,descendant",
        [
            (("given name", "Chelsea"), False),
            (("occupation", "musician"), False),
            (("Q298423", "Manning"), True),
            (("surname",), False),
        ],
    )
    def test_automaton_agrees_with_matcher_on_figure1(self, labels, descendant):
        pat = path_pattern(*labels, descendant=descendant)
        auto = PatternAutomaton(pat)
        for world, _p in world_distribution(figure1_document()):
            assert auto.accepts(encode_world(world)) == pat.matches(world)

    def test_branching_pattern_bridge(self):
        root = pattern("Q298423")
        root.add_child(pattern("surname"))
        root.add_child(pattern("given name"))
        pat = TreePattern(root)
        auto = PatternAutomaton(pat)
        for world, _p in world_distribution(figure1_document()):
            assert auto.accepts(encode_world(world)) == pat.matches(world)

    def test_explicit_table_agrees_with_lazy(self):
        pat = path_pattern("given name", "Chelsea")
        lazy = PatternAutomaton(pat)
        alphabet = {
            "Q298423", "occupation", "musician", "place of birth", "Crescent",
            "surname", "Manning", "given name", "Bradley", "Chelsea",
        }
        table = lazy.to_table(alphabet)
        for world, _p in world_distribution(figure1_document()):
            encoded = encode_world(world)
            assert table.accepts(encoded) == lazy.accepts(encoded)

    def test_table_automaton_is_deterministic(self):
        pat = path_pattern("a", "b")
        table = PatternAutomaton(pat).to_table({"a", "b"})
        tree = encode_world(make_world("a", [make_world("b")]))
        assert len(table.reachable_states(tree)) == 1
