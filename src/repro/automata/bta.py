"""Bottom-up tree automata on binary trees: the paper's query compilation target.

The Thatcher–Wright connection the paper builds on: MSO queries on trees are
exactly the regular tree languages, recognized by bottom-up tree automata.
We implement nondeterministic and deterministic bottom-up automata over
binary trees (nullary symbol ``#`` plus binary symbols), with the classical
closure operations — product, union, intersection, complement via the subset
construction — and emptiness testing.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.automata.trees import BinaryTree
from repro.util import check

State = Hashable


class TreeAutomaton:
    """A nondeterministic bottom-up automaton on binary trees.

    Transitions: ``leaf_states`` is the set of states at ``#`` leaves;
    ``rules`` maps ``(symbol, left_state, right_state)`` to a set of states.
    The automaton accepts if some run reaches a final state at the root.
    A wildcard symbol ``None`` in a rule key matches any symbol (useful for
    label-agnostic automata over open alphabets).
    """

    def __init__(
        self,
        leaf_states: Iterable[State],
        rules: Mapping[tuple, Iterable[State]],
        final_states: Iterable[State],
    ):
        self.leaf_states = frozenset(leaf_states)
        self.rules: dict[tuple, frozenset] = {
            key: frozenset(value) for key, value in rules.items()
        }
        self.final_states = frozenset(final_states)

    def _step(self, symbol: str, left: State, right: State) -> frozenset:
        exact = self.rules.get((symbol, left, right), frozenset())
        wildcard = self.rules.get((None, left, right), frozenset())
        return exact | wildcard

    def reachable_states(self, tree: BinaryTree) -> frozenset:
        """The set of states reachable at the root of ``tree``."""
        if tree.is_leaf():
            return self.leaf_states
        lefts = self.reachable_states(tree.left)  # type: ignore[arg-type]
        rights = self.reachable_states(tree.right)  # type: ignore[arg-type]
        result: set = set()
        for left in lefts:
            for right in rights:
                result |= self._step(tree.symbol, left, right)
        return frozenset(result)

    def accepts(self, tree: BinaryTree) -> bool:
        """Whether some run reaches a final state."""
        return bool(self.reachable_states(tree) & self.final_states)

    def symbols(self) -> frozenset:
        """The explicit (non-wildcard) symbols of the transition table."""
        return frozenset(key[0] for key in self.rules if key[0] is not None)

    def states(self) -> frozenset:
        """All states mentioned anywhere."""
        everything = set(self.leaf_states) | set(self.final_states)
        for (symbol, l, r), outs in self.rules.items():
            del symbol
            everything.add(l)
            everything.add(r)
            everything |= outs
        return frozenset(everything)

    # ------------------------------------------------------------------ #
    # closure operations

    def determinized(self, alphabet: Iterable[str]) -> "TreeAutomaton":
        """Subset construction; the result has frozenset states.

        ``alphabet`` must cover every symbol appearing in input trees
        (wildcard rules are folded into each concrete symbol).
        """
        alphabet = sorted(set(alphabet))
        initial = self.leaf_states
        states: set[frozenset] = {initial}
        rules: dict[tuple, frozenset] = {}
        frontier = [initial]
        while frontier:
            new_frontier = []
            for left in list(states):
                for right in list(states):
                    for symbol in alphabet:
                        key = (symbol, left, right)
                        if key in rules:
                            continue
                        out: set = set()
                        for left_state in left:
                            for right_state in right:
                                out |= self._step(symbol, left_state, right_state)
                        target = frozenset(out)
                        rules[key] = frozenset({target})
                        if target not in states:
                            states.add(target)
                            new_frontier.append(target)
            frontier = new_frontier
        finals = {s for s in states if s & self.final_states}
        return TreeAutomaton({initial}, rules, finals)

    def complemented(self, alphabet: Iterable[str]) -> "TreeAutomaton":
        """Complement via determinization and final-state flip."""
        det = self.determinized(alphabet)
        non_final = det.states() - det.final_states
        return TreeAutomaton(det.leaf_states, det.rules, non_final)

    def product(self, other: "TreeAutomaton", mode: str = "intersection") -> "TreeAutomaton":
        """Product automaton; ``mode`` is 'intersection' or 'union'."""
        check(mode in ("intersection", "union"), "mode must be intersection or union")
        leaf_states = {
            (a, b) for a in self.leaf_states for b in other.leaf_states
        }
        rules: dict[tuple, frozenset] = {}
        symbols = (self.symbols() | other.symbols()) or set()
        my_states = self.states()
        their_states = other.states()
        for symbol in set(symbols) | {None}:
            for l1 in my_states:
                for r1 in my_states:
                    out1 = self._step(symbol, l1, r1) if symbol is not None else self.rules.get((None, l1, r1), frozenset())
                    if not out1:
                        continue
                    for l2 in their_states:
                        for r2 in their_states:
                            out2 = (
                                other._step(symbol, l2, r2)
                                if symbol is not None
                                else other.rules.get((None, l2, r2), frozenset())
                            )
                            if not out2:
                                continue
                            key = (symbol, (l1, l2), (r1, r2))
                            combined = frozenset(
                                (a, b) for a in out1 for b in out2
                            )
                            rules[key] = rules.get(key, frozenset()) | combined
        if mode == "intersection":
            finals = {
                (a, b)
                for a in self.final_states
                for b in other.final_states
            }
        else:
            finals = {
                (a, b)
                for a in self.states()
                for b in other.states()
                if a in self.final_states or b in other.final_states
            }
        return TreeAutomaton(leaf_states, rules, finals)

    def is_empty(self, alphabet: Iterable[str]) -> bool:
        """Whether the accepted language is empty (fixpoint reachability)."""
        alphabet = sorted(set(alphabet))
        reachable: set = set(self.leaf_states)
        changed = True
        while changed:
            changed = False
            for symbol in alphabet:
                for left in list(reachable):
                    for right in list(reachable):
                        for out in self._step(symbol, left, right):
                            if out not in reachable:
                                reachable.add(out)
                                changed = True
        return not (reachable & self.final_states)

    def __repr__(self) -> str:
        return (
            f"TreeAutomaton(states={len(self.states())},"
            f" rules={len(self.rules)}, finals={len(self.final_states)})"
        )
