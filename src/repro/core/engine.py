"""The lineage engine: Theorems 1 and 2 of the paper, executable.

Given an uncertain instance, a tree decomposition of its Gaifman graph, and a
deterministic decomposition automaton for the query, one bottom-up pass over
the nice decomposition produces a *lineage circuit* over fact-presence
variables: the circuit is true exactly on the possible worlds satisfying the
query. By construction the circuit is

- **deterministic** (OR children correspond to distinct automaton states or
  to a fact's presence/absence — mutually exclusive events), and
- **decomposable** (AND children range over disjoint sets of read facts),

so on TID instances the query probability is a single linear pass
(:func:`repro.circuits.probability_dd`) — Theorem 1. On pcc-instances the
fact variables are substituted by their annotation gates and the combined
circuit is evaluated by junction-tree message passing — Theorem 2.

A second mode builds the *monotone provenance circuit* of the
nondeterministic automaton run (no negation, one gate per reachable
nondeterministic state), which specializes to semiring provenance for
absorptive semirings — the paper's provenance connection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits import Circuit, CompiledCircuit, compile_circuit, probability
from repro.circuits.circuit import K_AND, K_OR
from repro.core.cq_automaton import automaton_for
from repro.instances.base import Fact, Instance
from repro.instances.pcc import PCCInstance
from repro.instances.tid import TIDInstance
from repro.treewidth import (
    FORGET,
    INTRODUCE,
    JOIN,
    LEAF,
    READ,
    NiceTree,
    TreeDecomposition,
    build_nice_tree,
    decompose,
)
from repro.util import ReproError, check


@dataclass
class Lineage:
    """Result of a lineage run: the circuit plus structural diagnostics.

    The automaton path (:func:`build_lineage`) fills in the decomposition
    machinery it ran over; the witness-DNF path
    (:func:`build_provenance_circuit`) builds no tree, so its structural
    fields stay ``None``/0 and ``max_profile_size`` reports the widest
    witness set instead.
    """

    circuit: Circuit
    nice_tree: NiceTree | None = None
    decomposition: TreeDecomposition | None = None
    max_profile_size: int = 0
    node_count: int = 0
    fact_variables: dict[Fact, str] = field(default_factory=dict)

    def compiled(self) -> CompiledCircuit:
        """The lineage circuit lowered to the flat IR (compiled once).

        The compiled form is cached on the circuit arena, so every
        evaluation path — probabilities, possible-world checks, sampled
        batches — shares one lowering.
        """
        return compile_circuit(self.circuit)

    def probability_tid(self, tid: TIDInstance) -> float:
        """Theorem 1 evaluation: linear-time pass over the d-D circuit.

        Dispatches through the engine registry (engine ``dd``) so a
        process-wide :func:`repro.circuits.evaluation.force_engine`
        override applies here too.
        """
        return probability(self.compiled(), tid.event_space(), engine="dd")


def instance_decomposition(
    instance: Instance, heuristic: str = "min_fill"
) -> TreeDecomposition:
    """Tree decomposition of the instance's Gaifman graph."""
    graph = instance.gaifman_graph()
    if graph.number_of_nodes() == 0:
        return TreeDecomposition({0: []}, [])
    return decompose(graph, heuristic)


def assign_facts_to_bags(
    instance: Instance, decomposition: TreeDecomposition
) -> dict[int, list[Fact]]:
    """Choose, for every fact, one bag containing all of its constants.

    Existence is guaranteed for valid decompositions because a fact's
    constants form a clique of the Gaifman graph.
    """
    items_at: dict[int, list[Fact]] = {}
    bag_ids = sorted(decomposition.bags)
    # Invert the decomposition once (constant → bags holding it) so each
    # fact intersects the bag sets of its constants instead of scanning all
    # bags — O(|facts| · bag-set size) instead of O(|facts| · |bags|).
    bags_of_constant: dict[object, set[int]] = {}
    for node, bag in decomposition.bags.items():
        for constant in bag:
            bags_of_constant.setdefault(constant, set()).add(node)
    for f in instance.facts():
        candidates: set[int] | None = None
        for constant in frozenset(f.args):
            holding = bags_of_constant.get(constant)
            if holding is None:
                candidates = None
                break
            candidates = holding if candidates is None else candidates & holding
            if not candidates:
                candidates = None
                break
        if candidates is None and f.args:
            raise ReproError(
                f"no bag contains the constants of {f!r}; "
                "is the decomposition valid for this instance?"
            )
        home = min(candidates) if candidates else bag_ids[0]
        items_at.setdefault(home, []).append(f)
    return items_at


def build_lineage(
    instance: Instance,
    query,
    decomposition: TreeDecomposition | None = None,
    heuristic: str = "min_fill",
) -> Lineage:
    """Run the deterministic automaton for ``query`` over ``instance``.

    ``query`` may be a CQ, a UCQ, or any :class:`DecompositionAutomaton`.
    Returns the deterministic, decomposable lineage circuit whose variables
    are the facts' :attr:`~repro.instances.base.Fact.variable_name`.
    """
    automaton = automaton_for(query)
    if decomposition is None:
        decomposition = instance_decomposition(instance, heuristic)
    items_at = assign_facts_to_bags(instance, decomposition)
    nice = build_nice_tree(decomposition, items_at)

    circuit = Circuit()
    max_profile = 0
    node_count = 0
    # state_gates maps each nice node (by object identity, postorder) to a
    # dict from automaton state to the gate "the run below is in this state".
    gates_of: dict[int, dict] = {}

    for node in nice.iter_postorder():
        node_count += 1
        if node.kind == LEAF:
            table = {automaton.initial_state(): circuit.true()}
        elif node.kind == INTRODUCE:
            child_table = gates_of.pop(id(node.children[0]))
            table = {}
            for state, gate in child_table.items():
                new_state = automaton.introduce(state, node.vertex, node.bag)
                _accumulate(table, new_state, gate)
            table = _combine(circuit, table)
        elif node.kind == FORGET:
            child_table = gates_of.pop(id(node.children[0]))
            table = {}
            for state, gate in child_table.items():
                new_state = automaton.forget(state, node.vertex, node.bag)
                _accumulate(table, new_state, gate)
            table = _combine(circuit, table)
        elif node.kind == JOIN:
            left_table = gates_of.pop(id(node.children[0]))
            right_table = gates_of.pop(id(node.children[1]))
            table = {}
            for left_state, left_gate in left_table.items():
                for right_state, right_gate in right_table.items():
                    new_state = automaton.join(left_state, right_state, node.bag)
                    _accumulate(
                        table, new_state, circuit.and_gate([left_gate, right_gate])
                    )
            table = _combine(circuit, table)
        elif node.kind == READ:
            child_table = gates_of.pop(id(node.children[0]))
            f: Fact = node.item  # type: ignore[assignment]
            fact_var = circuit.variable(f.variable_name)
            table = {}
            for state, gate in child_table.items():
                absent, present = automaton.read(state, f, node.bag)
                if absent == present:
                    _accumulate(table, absent, gate)
                else:
                    _accumulate(
                        table, absent, circuit.and_gate([gate, circuit.negation(fact_var)])
                    )
                    _accumulate(table, present, circuit.and_gate([gate, fact_var]))
            table = _combine(circuit, table)
        else:  # pragma: no cover
            raise ReproError(f"unknown nice-tree node kind {node.kind!r}")
        max_profile = max(max_profile, len(table))
        gates_of[id(node)] = table

    root_table = gates_of[id(nice.root)]
    accepting = [gate for state, gate in root_table.items() if automaton.accepts(state)]
    circuit.set_output(circuit.or_gate(accepting))
    fact_variables = {f: f.variable_name for f in instance.facts()}
    return Lineage(
        circuit=circuit,
        nice_tree=nice,
        decomposition=decomposition,
        max_profile_size=max_profile,
        node_count=node_count,
        fact_variables=fact_variables,
    )


def _accumulate(table: dict, state, gate) -> None:
    table.setdefault(state, []).append(gate)


def _combine(circuit: Circuit, table: dict) -> dict:
    return {state: circuit.or_gate(gates) for state, gates in table.items()}


# --------------------------------------------------------------------------- #
# Probability front-ends


def tid_probability(
    query,
    tid: TIDInstance,
    decomposition: TreeDecomposition | None = None,
    heuristic: str = "min_fill",
) -> float:
    """Theorem 1: exact query probability on a TID instance.

    Linear in the instance for fixed query and decomposition width.
    """
    lineage = build_lineage(tid.instance, query, decomposition, heuristic)
    return lineage.probability_tid(tid)


def pcc_probability(
    query,
    pcc: PCCInstance,
    decomposition: TreeDecomposition | None = None,
    heuristic: str = "min_fill",
    max_width: int = 24,
    return_report: bool = False,
):
    """Theorem 2: exact query probability on a pcc-instance.

    Builds a lineage over fact variables, substitutes each fact variable by
    its annotation gate (yielding the combined circuit over event variables),
    and runs junction-tree message passing. Tractable when the combined
    circuit is tree-like — the bounded-treewidth pcc condition.

    Message passing does not require determinism, so for monotone CQ/UCQ
    queries we use the compact nondeterministic (monotone) lineage; the
    deterministic profile circuit is reserved for non-monotone automata.
    """
    from repro.queries.cq import ConjunctiveQuery, UnionOfConjunctiveQueries

    if isinstance(query, (ConjunctiveQuery, UnionOfConjunctiveQueries)):
        lineage = build_provenance_circuit(pcc.instance, query, decomposition, heuristic)
    else:
        lineage = build_lineage(pcc.instance, query, decomposition, heuristic)
    combined = combine_with_annotations(lineage.circuit, pcc)
    return probability(
        combined,
        pcc.space,
        engine="message_passing",
        heuristic=heuristic,
        max_width=max_width,
        return_report=return_report,
    )


def combine_with_annotations(lineage_circuit: Circuit, pcc: PCCInstance) -> Circuit:
    """Substitute fact variables of a lineage by their annotation gates."""
    combined = Circuit()
    annotation_gate: dict[str, int] = {}
    translation = pcc.circuit.copy_into(
        combined, substitution={}, roots=[pcc.gate_of(f) for f in pcc.facts()]
    )
    for f in pcc.facts():
        annotation_gate[f.variable_name] = translation[pcc.gate_of(f)]
    lineage_translation = lineage_circuit.copy_into(combined, annotation_gate)
    check(lineage_circuit.output is not None, "lineage circuit has no output")
    combined.set_output(lineage_translation[lineage_circuit.output])  # type: ignore[index]
    return combined


def pc_probability(query, pc, **kwargs):
    """Query probability on a pc-instance (formulas compiled to a circuit)."""
    from repro.instances.pcc import from_pc_instance

    return pcc_probability(query, from_pc_instance(pc), **kwargs)


# --------------------------------------------------------------------------- #
# Monotone provenance circuits (witness DNF over the join plan)


def _witness_rows(query, instance):
    """Witness fact variables of every homomorphism, index-encoded.

    Returns ``(names, flat_indices, width, n_rows)``: the distinct variable
    names in first-occurrence row-major order, the flattened witness matrix
    as indices into ``names`` (row-major, ``width`` entries per row), the
    number of atoms, and the number of homomorphisms. On a columnar
    instance (with numpy) the witness matrix comes straight out of the
    vectorized join — no ``Fact`` objects are materialized; the object
    backend enumerates the backtracking search's witnesses. Both produce
    the identical sequence, so the circuits built from them are
    bit-identical.
    """
    from repro.instances.columnar import ColumnarInstance

    width = len(query.atoms)
    if isinstance(instance, ColumnarInstance):
        from repro.queries.vectorized import evaluate_cq, vectorized_available

        if vectorized_available():
            from repro.instances.columnar import columnar_numpy

            np = columnar_numpy()
            result = evaluate_cq(query, instance)
            if result.n_rows == 0:
                return [], [], width, 0
            flat = result.witnesses.ravel()  # row-major
            uniq, first_at, inverse = np.unique(
                flat, return_index=True, return_inverse=True
            )
            # np.unique sorts by fact id; re-rank to first-occurrence order
            # so variable creation order matches the object path.
            order = np.argsort(first_at)
            rank = np.empty(len(order), dtype=np.int64)
            rank[order] = np.arange(len(order), dtype=np.int64)
            names = instance.variable_names_for(uniq[order])
            return names, rank[inverse], width, result.n_rows
    index_of: dict[str, int] = {}
    names: list[str] = []
    flat_indices: list[int] = []
    n_rows = 0
    for witness in query.witnesses(instance):
        n_rows += 1
        for f in witness:
            name = f.variable_name
            idx = index_of.get(name)
            if idx is None:
                idx = len(names)
                index_of[name] = idx
                names.append(name)
            flat_indices.append(idx)
    return names, flat_indices, width, n_rows


def _append_witness_dnf(circuit: Circuit, query, instance) -> tuple[int, int]:
    """Append the witness DNF of a CQ to ``circuit``; returns (gate, rows).

    One bulk variable append, one bulk AND append (a gate per
    homomorphism), one OR over them — entirely on the arena's flat
    mirrors, so a million-row lineage never materializes gate objects.
    """
    names, flat_indices, width, n_rows = _witness_rows(query, instance)
    if n_rows == 0:
        return circuit.false(), 0
    var_gates = circuit.append_variables(names)
    if isinstance(flat_indices, list):
        inputs = [var_gates[i] for i in flat_indices]
    else:
        from repro.instances.columnar import columnar_numpy

        np = columnar_numpy()
        inputs = np.frombuffer(var_gates, dtype=np.int32).astype(np.int64)[
            flat_indices
        ]
    if width == 1:
        # Single-atom rows: AND of one input collapses to the input.
        and_gates = inputs
    else:
        offsets = range(0, (n_rows + 1) * width, width)
        and_gates = circuit.append_gates(K_AND, inputs, offsets)
    if n_rows == 1:
        return int(and_gates[0]), 1
    or_gate = circuit.append_gates(K_OR, and_gates, (0, n_rows))[0]
    return or_gate, n_rows


def compile_query_plan(
    instance: Instance,
    query,
    method: str = "lineage",
    heuristic: str = "min_fill",
) -> tuple[Lineage, CompiledCircuit]:
    """Lineage + compiled plan in one call — the serving compile path.

    ``method`` picks the construction: ``"lineage"`` (the default —
    :func:`build_lineage`, the decomposition-automaton Theorem 1 path) or
    ``"provenance"`` (:func:`build_provenance_circuit`, the monotone
    provenance circuit). Only ``"lineage"`` plans are deterministic and
    decomposable, i.e. valid inputs to the linear probability pass
    (``probability``/``probability_batch``); the monotone circuit defines
    the same Boolean function but shares witnesses across OR branches, so
    it is for semiring provenance, not for marginals. Returns
    ``(lineage, compiled)``; the lowering is cached on the arena, so the
    query service registers the compiled plan without paying a second
    lowering anywhere.
    """
    builders = {
        "lineage": build_lineage,
        "provenance": build_provenance_circuit,
    }
    builder = builders.get(method)
    if builder is None:
        raise ReproError(
            f"unknown compile method {method!r}; expected one of "
            f"{sorted(builders)}"
        )
    lineage = builder(instance, query, heuristic=heuristic)
    return lineage, lineage.compiled()


def build_provenance_circuit(
    instance: Instance,
    query,
    decomposition: TreeDecomposition | None = None,
    heuristic: str = "min_fill",
) -> Lineage:
    """Build the *monotone* provenance circuit of a CQ/UCQ over an instance.

    The circuit is the witness DNF of the query's join plan: an OR over
    homomorphisms of the AND of their witness facts' variables (for UCQs,
    one DNF per disjunct under a final OR). It is appended to the arena in
    bulk — vectorized end to end on columnar instances. Absence is never
    mentioned (monotone queries only). Evaluating the circuit in a
    commutative semiring yields the query's GKT provenance — see
    :mod:`repro.semirings.provenance`.

    ``decomposition``/``heuristic`` are accepted for signature
    compatibility with :func:`build_lineage`; the DNF needs no tree.
    """
    del decomposition, heuristic  # DNF construction is decomposition-free
    from repro.queries.cq import ConjunctiveQuery, UnionOfConjunctiveQueries

    if isinstance(query, ConjunctiveQuery):
        disjuncts: tuple[ConjunctiveQuery, ...] = (query,)
    elif isinstance(query, UnionOfConjunctiveQueries):
        disjuncts = query.disjuncts
    else:
        raise ReproError("provenance circuits support CQs and UCQs only")

    circuit = Circuit()
    outputs = []
    max_rows = 0
    for q in disjuncts:
        gate, n_rows = _append_witness_dnf(circuit, q, instance)
        outputs.append(gate)
        max_rows = max(max_rows, n_rows)
    if len(outputs) == 1:
        circuit.set_output(outputs[0])
    else:
        # Bulk OR keeps the arena object-free even for empty disjuncts
        # (ORing in their false gate is a no-op semantically).
        circuit.set_output(
            circuit.append_gates(K_OR, outputs, (0, len(outputs)))[0]
        )
    return Lineage(
        circuit=circuit, max_profile_size=max_rows, node_count=len(circuit)
    )
