"""Conjunctive queries and unions of conjunctive queries.

Boolean CQs are existentially quantified conjunctions of relational atoms
(``∃xy R(x) ∧ S(x,y) ∧ T(y)``). Evaluation on a certain instance is by
backtracking homomorphism search; on probabilistic instances, the baselines
enumerate worlds while the core engine (S6) compiles the query to a
decomposition automaton.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.instances.base import AbstractInstance, Constant, Fact
from repro.util import check

Term = object  # either a Variable or a constant


@dataclass(frozen=True)
class Variable:
    """A query variable, distinguished from constants by type."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Atom:
    """A relational atom ``relation(terms...)``; terms mix variables/constants."""

    relation: str
    terms: tuple[Term, ...]

    def variables(self) -> frozenset[Variable]:
        """Return the variables occurring in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def __repr__(self) -> str:
        inside = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inside})"


def atom(relation: str, *terms: Term) -> Atom:
    """Convenience constructor for atoms."""
    return Atom(relation, tuple(terms))


def variables(*names: str) -> tuple[Variable, ...]:
    """Create several variables at once: ``x, y = variables("x", "y")``."""
    return tuple(Variable(n) for n in names)


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A Boolean conjunctive query: a set of atoms, all variables existential.

    >>> x, y = variables("x", "y")
    >>> q = ConjunctiveQuery((atom("R", x), atom("S", x, y), atom("T", y)))
    >>> len(q.atoms)
    3
    """

    atoms: tuple[Atom, ...]

    def __post_init__(self):
        check(len(self.atoms) > 0, "a conjunctive query needs at least one atom")

    def variables(self) -> frozenset[Variable]:
        """Return all variables of the query."""
        return frozenset().union(*(a.variables() for a in self.atoms))

    def is_self_join_free(self) -> bool:
        """Whether every relation name occurs in at most one atom."""
        names = [a.relation for a in self.atoms]
        return len(names) == len(set(names))

    def homomorphisms(
        self, instance: AbstractInstance
    ) -> Iterator[dict[Variable, Constant]]:
        """Enumerate all homomorphisms from the query into ``instance``.

        On the object backend: backtracking over atoms in a
        connectivity-aware order, with a per-relation value index so
        partially bound atoms probe candidate buckets instead of scanning
        every fact of the relation. On the columnar backend (with numpy):
        the vectorized hash-join pipeline of
        :mod:`repro.queries.vectorized`. Both enumerate the identical
        sequence of bindings — the backtracking search is the oracle the
        join pipeline is pinned to.
        """
        from repro.instances.columnar import ColumnarInstance

        if isinstance(instance, ColumnarInstance):
            from repro.queries.vectorized import evaluate_cq, vectorized_available

            if vectorized_available():
                yield from evaluate_cq(self, instance).bindings()
                return
        order = _atom_order(self.atoms)
        index = _RelationIndex(instance, {a.relation for a in self.atoms})

        def extend(depth: int, binding: dict[Variable, Constant]) -> Iterator[dict]:
            if depth == len(order):
                yield dict(binding)
                return
            current = order[depth]
            for f in index.candidates(current, binding):
                match = _match(current, f, binding)
                if match is not None:
                    yield from extend(depth + 1, match)

        yield from extend(0, {})

    def holds_in(self, instance: AbstractInstance) -> bool:
        """Boolean evaluation: does the query have a homomorphism?"""
        return next(self.homomorphisms(instance), None) is not None

    def witnesses(self, instance: AbstractInstance) -> Iterator[tuple[Fact, ...]]:
        """Enumerate image tuples (one fact per atom) of each homomorphism.

        The disjunction over witnesses of the conjunction of their facts is
        the query *lineage* in DNF — used by the Karp–Luby baseline.
        """
        for binding in self.homomorphisms(instance):
            yield tuple(
                Fact(a.relation, tuple(binding.get(t, t) for t in a.terms))
                for a in self.atoms
            )

    def __repr__(self) -> str:
        return "∃ " + " ∧ ".join(repr(a) for a in self.atoms)


@dataclass(frozen=True)
class UnionOfConjunctiveQueries:
    """A finite union (disjunction) of Boolean conjunctive queries."""

    disjuncts: tuple[ConjunctiveQuery, ...]

    def __post_init__(self):
        check(len(self.disjuncts) > 0, "a UCQ needs at least one disjunct")

    def holds_in(self, instance: AbstractInstance) -> bool:
        """Boolean evaluation: does some disjunct hold?"""
        return any(q.holds_in(instance) for q in self.disjuncts)

    def variables(self) -> frozenset[Variable]:
        """Return the union of the disjuncts' variables."""
        return frozenset().union(*(q.variables() for q in self.disjuncts))

    def __repr__(self) -> str:
        return " ∨ ".join(f"({q!r})" for q in self.disjuncts)


def cq(*atoms_: Atom) -> ConjunctiveQuery:
    """Convenience constructor for conjunctive queries."""
    return ConjunctiveQuery(tuple(atoms_))


def homomorphisms(
    query: ConjunctiveQuery, instance: AbstractInstance
) -> Iterator[dict[Variable, Constant]]:
    """Module-level form of :meth:`ConjunctiveQuery.homomorphisms`.

    Part of the blessed ``repro`` facade: ``homomorphisms(q, inst)``
    reads like the other top-level verbs (``certain_answers``,
    ``build_provenance_circuit``) and dispatches to the vectorized join
    pipeline on columnar instances exactly like the method does.
    """
    return query.homomorphisms(instance)


def ucq(*queries: ConjunctiveQuery) -> UnionOfConjunctiveQueries:
    """Convenience constructor for unions of conjunctive queries."""
    return UnionOfConjunctiveQueries(tuple(queries))


def _match(
    query_atom: Atom, f: Fact, binding: Mapping[Variable, Constant]
) -> dict[Variable, Constant] | None:
    """Try to extend ``binding`` so that ``query_atom`` maps onto fact ``f``."""
    if query_atom.relation != f.relation or len(query_atom.terms) != len(f.args):
        return None
    extended = dict(binding)
    for term, value in zip(query_atom.terms, f.args):
        if isinstance(term, Variable):
            bound = extended.get(term)
            if bound is None:
                extended[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extended


def _atom_order_indices(atoms: tuple[Atom, ...]) -> list[int]:
    """Atom positions ordered so each shares variables with predecessors.

    Index-based so duplicate atoms (self-joins mapping two positions onto
    the same relation row) keep distinct identities; the vectorized join
    planner follows the same order to reproduce the backtracking search's
    enumeration order exactly.
    """
    remaining = list(range(len(atoms)))
    if not remaining:
        return []
    ordered = [remaining.pop(0)]
    seen = set(atoms[ordered[0]].variables())
    while remaining:
        chosen = next(
            (i for i in remaining if atoms[i].variables() & seen), remaining[0]
        )
        remaining.remove(chosen)
        ordered.append(chosen)
        seen |= atoms[chosen].variables()
    return ordered


def _atom_order(atoms: Iterable[Atom]) -> list[Atom]:
    """Order atoms so each one shares variables with its predecessors if possible."""
    listed = tuple(atoms)
    return [listed[i] for i in _atom_order_indices(listed)]


class _RelationIndex:
    """Per-relation, per-position value index for the backtracking search.

    Buckets facts by ``(position, value)`` so an atom with any bound
    position (a constant, or a variable the partial binding fixes) scans
    its smallest matching bucket instead of the whole relation. Buckets
    preserve insertion order, so candidate enumeration — and hence the
    order of homomorphisms — is identical to the full scan's.
    """

    def __init__(self, instance: AbstractInstance, relations: Iterable[str]):
        self._facts = {
            relation: instance.by_relation(relation) for relation in relations
        }
        self._buckets: dict[str, list[dict]] = {}

    def _position_buckets(self, relation: str) -> list[dict]:
        buckets = self._buckets.get(relation)
        if buckets is None:
            buckets = []
            for f in self._facts[relation]:
                for position, value in enumerate(f.args):
                    while len(buckets) <= position:
                        buckets.append({})
                    buckets[position].setdefault(value, []).append(f)
            self._buckets[relation] = buckets
        return buckets

    def candidates(self, query_atom: Atom, binding: Mapping) -> list[Fact]:
        facts = self._facts.get(query_atom.relation, [])
        best = facts
        buckets = None
        for position, term in enumerate(query_atom.terms):
            # Mirrors _match: a variable bound to None counts as unbound.
            value = binding.get(term) if isinstance(term, Variable) else term
            if value is None:
                continue
            if buckets is None:
                buckets = self._position_buckets(query_atom.relation)
            bucket = (
                buckets[position].get(value, []) if position < len(buckets) else []
            )
            if len(bucket) < len(best):
                best = bucket
        return best
