"""E18 — the columnar U-relation pipeline vs the object pipeline, at scale.

Runs the full generate → query → provenance → compile pipeline for the
Q_RST chain workload on both instance backends and three sizes (about
10^4, 10^5 and 10^6 facts). The object path is skipped at 10^6 — the point
of the columnar backend is that the largest size never materializes a
single :class:`~repro.instances.base.Fact`, which this benchmark asserts
via the ``facts_materialized`` counter.

Correctness is checked, not assumed, at the sizes where both backends run:

* the provenance circuits' flat arena arrays must be bit-identical,
* the compiled lowerings must be bit-identical, and
* a seeded Monte-Carlo marginal (worlds sampled from the TID event space,
  pushed through the compiled batch kernels) must be bit-identical —
  a deterministic function of the circuit arrays and the per-fact
  probabilities, so any drift in either shows up as a float mismatch.

Writes ``BENCH_columnar_pipeline.json`` at the repo root; the committed
copy is the baseline that ``check_regression.py`` gates in CI. Without
numpy the columnar fast paths degrade to scalar fallbacks and the speedup
collapses honestly — the JSON records ``"numpy": false`` and the runner
must use ``--report-only`` judgement, as with E16/E17.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.circuits import compile_circuit
from repro.circuits.compiled import numpy_available, numpy_module
from repro.core.engine import build_provenance_circuit
from repro.instances.columnar import ColumnarInstance
from repro.queries import atom, cq, variables
from repro.workloads.generators import rst_chain_tid

x, y = variables("x", "y")
Q_RST = cq(atom("R", x), atom("S", x, y), atom("T", y))

# rst_chain_tid(n) holds 3n - 1 facts; these n values hit ~1e4/1e5/1e6.
SIZES = ((3_334, "1e4"), (33_334, "1e5"), (333_334, "1e6"))
LARGEST = "1e6"
MC_WORLDS = 256
MC_SEED = 7

FLAT_ARRAYS = (
    "_kind_codes",
    "_var_slots",
    "_inputs_flat",
    "_input_offsets",
    "_gate_levels",
)


def _count_witnesses(instance) -> int:
    """The query stage: how many homomorphisms does Q_RST have?"""
    if isinstance(instance, ColumnarInstance):
        from repro.queries.vectorized import evaluate_cq

        if numpy_available():
            return evaluate_cq(Q_RST, instance).n_rows
    return sum(1 for _ in Q_RST.homomorphisms(instance))


def _best_pipeline(n: int, backend: str, repeats: int) -> dict:
    """Best-of-``repeats`` run of :func:`_run_pipeline` (same seed, same
    outputs every run — only the clock differs)."""
    runs = [_run_pipeline(n, backend) for _ in range(repeats)]
    return min(runs, key=lambda r: r["stages"]["total"])


def _run_pipeline(n: int, backend: str) -> dict:
    """Time each stage of the pipeline on one backend; return stages + state."""
    stages: dict[str, float] = {}
    t0 = time.perf_counter()
    tid = rst_chain_tid(n, seed=0, backend=backend)
    stages["generate"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    witnesses = _count_witnesses(tid.instance)
    stages["query"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    lineage = build_provenance_circuit(tid.instance, Q_RST)
    stages["provenance"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    compiled = compile_circuit(lineage.circuit)
    stages["compile"] = time.perf_counter() - t0

    stages["total"] = sum(stages.values())
    return {
        "stages": stages,
        "tid": tid,
        "circuit": lineage.circuit,
        "compiled": compiled,
        "witnesses": witnesses,
    }


def _circuits_identical(a, b) -> bool:
    """Bit-level equality of two arenas' flat mirrors."""
    if a.output != b.output or a._slot_names != b._slot_names:
        return False
    return all(getattr(a, name) == getattr(b, name) for name in FLAT_ARRAYS)


def _lowerings_identical(a, b) -> bool:
    """Bit-level equality of two compiled circuits' plan arrays."""
    return (
        a.kinds == b.kinds
        and a.offsets == b.offsets
        and a.indices == b.indices
        and a.var_slot == b.var_slot
        and a.var_names == b.var_names
        and a.output == b.output
    )


def _mc_marginal(compiled, tid) -> float:
    """Seeded Monte-Carlo estimate of P(Q) through the batch kernels.

    Fully determined by the compiled slot order, the per-fact marginals and
    the fixed seed — so two backends that really built the same circuit
    over the same event space produce the *bit-identical* float.
    """
    np = numpy_module()
    probs = np.asarray(
        compiled.slot_marginals(tid.event_space()), dtype=np.float64
    )
    rng = np.random.default_rng(MC_SEED)
    worlds = rng.random((MC_WORLDS, probs.shape[0])) < probs
    hits = compiled.evaluate_batch(worlds)
    return float(sum(hits)) / MC_WORLDS


def run() -> dict:
    has_numpy = numpy_available()
    result: dict = {
        "bench": "columnar_pipeline",
        "numpy": has_numpy,
        "query": "R(x), S(x, y), T(y)",
        "mc_worlds": MC_WORLDS,
        "sizes": {},
    }
    pipeline_identical = True
    marginals_identical = True
    largest_ok = False
    largest_materialized = -1
    speedup_at_1e5 = 0.0

    for n, label in SIZES:
        facts = 3 * n - 1
        entry: dict = {"n": n, "facts": facts}
        if label == LARGEST and not has_numpy:
            # Without the vectorized join the largest size would crawl
            # through the scalar fallback; skip it honestly.
            entry["skipped"] = "no numpy"
            result["sizes"][label] = entry
            continue

        repeats = 1 if label == LARGEST else 2
        columnar = _best_pipeline(n, "columnar", repeats)
        entry["columnar_seconds"] = columnar["stages"]
        entry["witnesses"] = columnar["witnesses"]
        entry["gates"] = len(columnar["circuit"])
        entry["facts_materialized"] = columnar["tid"].instance.facts_materialized

        if label == LARGEST:
            entry["object_skipped"] = True
            largest_ok = True
            largest_materialized = entry["facts_materialized"]
            print(
                f"[{label}] facts={facts} columnar total "
                f"{columnar['stages']['total']:.3f}s "
                f"(materialized {largest_materialized} facts)"
            )
        else:
            obj = _best_pipeline(n, "object", repeats)
            entry["object_seconds"] = obj["stages"]
            same_circuit = _circuits_identical(obj["circuit"], columnar["circuit"])
            same_lowering = _lowerings_identical(
                obj["compiled"], columnar["compiled"]
            )
            entry["circuits_bit_identical"] = same_circuit
            entry["lowerings_bit_identical"] = same_lowering
            pipeline_identical = pipeline_identical and same_circuit and same_lowering
            if has_numpy:
                m_obj = _mc_marginal(obj["compiled"], obj["tid"])
                m_col = _mc_marginal(columnar["compiled"], columnar["tid"])
                entry["marginal_object"] = m_obj
                entry["marginal_columnar"] = m_col
                same_marginal = m_obj == m_col
                entry["marginals_bit_identical"] = same_marginal
                marginals_identical = marginals_identical and same_marginal
            speedup = obj["stages"]["total"] / max(
                columnar["stages"]["total"], 1e-9
            )
            entry["speedup"] = speedup
            if label == "1e5":
                speedup_at_1e5 = speedup
            print(
                f"[{label}] facts={facts} object {obj['stages']['total']:.3f}s "
                f"columnar {columnar['stages']['total']:.3f}s "
                f"speedup {speedup:.1f}x identical="
                f"{same_circuit and same_lowering}"
            )
        result["sizes"][label] = entry

    result["pipeline_bit_identical"] = pipeline_identical
    result["marginals_bit_identical"] = marginals_identical
    result["speedup_at_1e5"] = speedup_at_1e5
    result["columnar_1e6_completed"] = largest_ok
    result["columnar_1e6_facts_materialized"] = largest_materialized
    return result


def main() -> None:
    result = run()
    out = Path(__file__).resolve().parents[1] / "BENCH_columnar_pipeline.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out}")
    print(
        "targets: speedup_at_1e5 >= 6.0, pipeline/marginals bit-identical, "
        "1e6 columnar run materializes 0 facts"
    )


if __name__ == "__main__":
    main()
