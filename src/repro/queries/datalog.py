"""Non-probabilistic Datalog with semi-naive evaluation.

The deterministic substrate for the probabilistic-rules direction (§2.3):
certain-answer reasoning under hard rules, against which the probabilistic
chase is compared. Rules here are plain Datalog (no existentials — those live
in :mod:`repro.rules.tgds`).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.instances.base import Fact, Instance
from repro.queries.cq import Atom, Variable
from repro.util import check


@dataclass(frozen=True)
class DatalogRule:
    """A rule ``head :- body`` with no existential variables in the head."""

    head: Atom
    body: tuple[Atom, ...]

    def __post_init__(self):
        body_vars = frozenset().union(*(a.variables() for a in self.body)) if self.body else frozenset()
        check(
            self.head.variables() <= body_vars,
            "head variables must occur in the body (safe Datalog)",
        )

    def __repr__(self) -> str:
        return f"{self.head!r} :- " + ", ".join(repr(a) for a in self.body)


class DatalogProgram:
    """A set of Datalog rules, evaluated semi-naively to a fixpoint."""

    def __init__(self, rules: Iterable[DatalogRule] = ()):
        self.rules: list[DatalogRule] = list(rules)

    def add(self, rule: DatalogRule) -> DatalogRule:
        """Register a rule."""
        self.rules.append(rule)
        return rule

    def idb_relations(self) -> frozenset[str]:
        """Relations defined by rule heads."""
        return frozenset(rule.head.relation for rule in self.rules)

    def fixpoint(self, instance: Instance, max_rounds: int = 10_000) -> Instance:
        """Return the least fixpoint of the program over ``instance``.

        Semi-naive evaluation: each round only considers rule matches using
        at least one fact derived in the previous round.
        """
        total = Instance(instance.facts())
        delta = Instance(instance.facts())
        rounds = 0
        while len(delta) > 0:
            rounds += 1
            check(rounds <= max_rounds, "Datalog fixpoint exceeded max_rounds")
            new_delta = Instance()
            for rule in self.rules:
                for derived in _apply_rule(rule, total, delta):
                    if derived not in total:
                        total.add(derived)
                        new_delta.add(derived)
            delta = new_delta
        return total

    def __repr__(self) -> str:
        return f"DatalogProgram(rules={len(self.rules)})"


def _apply_rule(rule: DatalogRule, total: Instance, delta: Instance) -> list[Fact]:
    """All head facts derivable with ≥1 body atom matched in ``delta``."""
    derived: list[Fact] = []
    body = rule.body
    for pivot in range(len(body)):
        # Atom ``pivot`` must match inside delta; others match anywhere.
        def extend(index: int, binding: dict) -> None:
            if index == len(body):
                head_args = tuple(
                    binding[t] if isinstance(t, Variable) else t for t in rule.head.terms
                )
                derived.append(Fact(rule.head.relation, head_args))
                return
            source = delta if index == pivot else total
            for f in source.by_relation(body[index].relation):
                match = _match_atom(body[index], f, binding)
                if match is not None:
                    extend(index + 1, match)

        extend(0, {})
    # Deduplicate while preserving order.
    unique: dict[Fact, None] = {}
    for f in derived:
        unique.setdefault(f, None)
    return list(unique)


def _match_atom(a: Atom, f: Fact, binding: dict) -> dict | None:
    if a.relation != f.relation or len(a.terms) != len(f.args):
        return None
    extended = dict(binding)
    for term, value in zip(a.terms, f.args):
        if isinstance(term, Variable):
            bound = extended.get(term)
            if bound is None:
                extended[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return extended
