"""Always-on query service: the front door of the circuit pipeline.

Everything below this package already exists in the library — compiled
plans, batch kernels, the worker pool, the distributed host pool, the
on-disk plan cache. What was missing is a process that keeps them *hot*:
every embedding caller pays python import + compile, which is exactly the
cost the compile-once/evaluate-many design was built to amortize. The
service is that process:

- ``repro serve-http`` runs :class:`QueryService` behind a stdlib asyncio
  HTTP front end (:mod:`repro.service.http`); plans, caches and the
  distributed host pool stay resident across requests;
- concurrent ``/probability`` requests for the same plan digest are
  **coalesced** into one matrix pass (:mod:`repro.service.coalesce`) —
  batching across users is free throughput, bit-identical per row;
- served marginals are **cached** by ``(plan_digest, valuation_hash)``
  with LRU + TTL (:mod:`repro.service.cache`);
- long Monte-Carlo runs **stream** converging estimates over a chunked
  response and are cancelled promptly when the client disconnects;
- ``/stats`` exposes pool/compile/cache counters and per-endpoint
  latency histograms.

:class:`ServiceClient` / :func:`spawn_service`
(:mod:`repro.service.client`) are the matching stdlib client and the
subprocess lifecycle helper shared by the tests and the E19 bench.
"""

from repro.service.app import QueryService, ServiceError, StreamResponse, parse_query
from repro.service.cache import LatencyHistogram, ResultCache, valuation_hash
from repro.service.client import (
    LocalService,
    ServiceClient,
    ServiceClientError,
    spawn_service,
)
from repro.service.coalesce import Coalescer
from repro.service.http import fastapi_available, run_service, serve_http

__all__ = [
    "Coalescer",
    "LatencyHistogram",
    "LocalService",
    "QueryService",
    "ResultCache",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "StreamResponse",
    "fastapi_available",
    "parse_query",
    "run_service",
    "serve_http",
    "spawn_service",
    "valuation_hash",
]
