"""Boolean circuits, their treewidth, and weighted model counting (S2)."""

from repro.circuits.circuit import AND, CONST, NOT, OR, VAR, Circuit, Gate, from_formula
from repro.circuits.dd import (
    check_decomposability,
    check_determinism_sampled,
    probability_dd,
)
from repro.circuits.export import CircuitStats, circuit_stats, to_dot
from repro.circuits.graph import circuit_width, moral_graph
from repro.circuits.wmc import (
    MessagePassingReport,
    wmc_enumerate,
    wmc_message_passing,
    wmc_shannon,
)

__all__ = [
    "AND",
    "CONST",
    "Circuit",
    "CircuitStats",
    "Gate",
    "MessagePassingReport",
    "NOT",
    "OR",
    "VAR",
    "check_decomposability",
    "circuit_stats",
    "to_dot",
    "check_determinism_sampled",
    "circuit_width",
    "from_formula",
    "moral_graph",
    "probability_dd",
    "wmc_enumerate",
    "wmc_message_passing",
    "wmc_shannon",
]
