"""Synthetic workload generators with certified structure.

Everything is seeded and deterministic. The partial-k-tree generator records
the decomposition built during generation, so benchmarks can run with a
*certified* width instead of trusting heuristics.

Every generator takes a ``backend`` knob (defaulting to the process-wide
:func:`repro.instances.columnar.instance_backend`). The linear-size
generators (``path``, ``cycle``, ``rst_chain``, ``rst_bipartite``) emit
columnar instances *natively*: encoded column batches go straight into the
U-relation arrays, so million-fact instances load without creating a
single :class:`~repro.instances.base.Fact`. Probabilities are always drawn
by the same scalar RNG sequence, so a generator produces the identical
(fact, probability) set on either backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.instances.base import fact
from repro.instances.columnar import ColumnarInstance, columnar_numpy
from repro.instances.tid import TIDInstance
from repro.treewidth import TreeDecomposition
from repro.util import check, stable_rng


@dataclass
class GeneratedGraph:
    """A generated graph TID plus its certified decomposition."""

    tid: TIDInstance
    decomposition: TreeDecomposition
    width: int


def _columnar_of(tid: TIDInstance) -> ColumnarInstance | None:
    """The TID's columnar instance when bulk loads apply, else ``None``."""
    return tid.instance if isinstance(tid.instance, ColumnarInstance) else None


def _int_column(start: int, stop: int):
    """An encoded column holding ``start..stop-1`` (codes = values)."""
    np = columnar_numpy()
    if np is not None:
        return np.arange(start, stop, dtype=np.int64)
    from array import array

    return array("i", range(start, stop))


def path_tid(
    n: int, probability: float = 0.5, seed: int = 0, backend: str | None = None
) -> TIDInstance:
    """A path of uncertain edges E(i, i+1) — treewidth 1."""
    rng = stable_rng(seed)
    tid = TIDInstance(backend=backend)
    columnar = _columnar_of(tid)
    if columnar is not None and n > 1:
        probs = _jitter_list(probability, rng, n - 1)
        columnar.intern_int_range(n)
        tid.extend_encoded(
            "E", [_int_column(0, n - 1), _int_column(1, n)], probs
        )
        return tid
    for i in range(n - 1):
        tid.add(fact("E", i, i + 1), _jitter(probability, rng))
    return tid


def cycle_tid(
    n: int, probability: float = 0.5, seed: int = 0, backend: str | None = None
) -> TIDInstance:
    """A cycle of uncertain edges — treewidth 2."""
    rng = stable_rng(seed)
    tid = TIDInstance(backend=backend)
    columnar = _columnar_of(tid)
    if columnar is not None and n > 0:
        probs = _jitter_list(probability, rng, n)
        columnar.intern_int_range(n)
        np = columnar_numpy()
        if np is not None:
            successor = (np.arange(n, dtype=np.int64) + 1) % n
        else:
            from array import array

            successor = array("i", ((i + 1) % n for i in range(n)))
        tid.extend_encoded("E", [_int_column(0, n), successor], probs)
        return tid
    for i in range(n):
        tid.add(fact("E", i, (i + 1) % n), _jitter(probability, rng))
    return tid


def grid_tid(
    rows: int,
    cols: int,
    probability: float = 0.5,
    seed: int = 0,
    backend: str | None = None,
) -> TIDInstance:
    """A rows×cols grid of uncertain edges — treewidth min(rows, cols)."""
    rng = stable_rng(seed)
    tid = TIDInstance(backend=backend)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                tid.add(fact("E", (r, c), (r, c + 1)), _jitter(probability, rng))
            if r + 1 < rows:
                tid.add(fact("E", (r, c), (r + 1, c)), _jitter(probability, rng))
    return tid


def partial_ktree_tid(
    n: int,
    k: int,
    edge_keep: float = 0.7,
    probability: float = 0.5,
    seed: int = 0,
    backend: str | None = None,
) -> GeneratedGraph:
    """A random partial k-tree with a certified width-k decomposition.

    Grows a k-tree (start from a (k+1)-clique; repeatedly attach a new vertex
    to a random existing k-clique), recording one bag per vertex; then keeps
    each edge with probability ``edge_keep`` (edge-subgraphs of k-trees are
    exactly the partial k-trees). The recorded decomposition stays valid.
    """
    check(n >= k + 1, "need at least k+1 vertices")
    rng = stable_rng(seed)
    graph = nx.complete_graph(k + 1)
    cliques = [tuple(range(k + 1))]
    bags: dict[int, frozenset] = {0: frozenset(range(k + 1))}
    edges: list[tuple[int, int]] = []
    bag_of_clique = {cliques[0]: 0}
    for v in range(k + 1, n):
        base = cliques[rng.randrange(len(cliques))]
        members = rng.sample(base, k) if len(base) > k else list(base)
        for u in members:
            graph.add_edge(v, u)
        new_bag = frozenset(list(members) + [v])
        bag_id = len(bags)
        bags[bag_id] = new_bag
        edges.append((bag_id, bag_of_clique[base]))
        for subset_index in range(len(members) + 1):
            candidate = tuple(sorted(members[:subset_index] + members[subset_index + 1 :] + [v]))
            if len(candidate) == k and candidate not in bag_of_clique:
                cliques.append(candidate)
                bag_of_clique[candidate] = bag_id
        full = tuple(sorted(list(members) + [v]))
        if len(full) == k and full not in bag_of_clique:
            cliques.append(full)
            bag_of_clique[full] = bag_id
    decomposition = TreeDecomposition(bags, edges)
    tid = TIDInstance(backend=backend)
    for a, b in sorted(graph.edges, key=str):
        if rng.random() < edge_keep:
            key = (a, b) if str(a) <= str(b) else (b, a)
            tid.add(fact("E", *key), _jitter(probability, rng))
    return GeneratedGraph(tid=tid, decomposition=decomposition, width=k)


def rst_chain_tid(
    n: int, probability: float = 0.5, seed: int = 0, backend: str | None = None
) -> TIDInstance:
    """R(i), S(i, i+1), T(i) facts along a path — the Q_RST workload.

    The scaling workload of the columnar-pipeline benchmark (E18): on the
    columnar backend it bulk-loads the three relations as encoded ranges,
    so ``n`` in the millions stays object-free. The RNG draw order matches
    the object path fact for fact (R, T, then S per position).
    """
    rng = stable_rng(seed)
    tid = TIDInstance(backend=backend)
    columnar = _columnar_of(tid)
    if columnar is not None and n > 0:
        # The object path draws R, T, S jitters interleaved per position;
        # one flat draw of the same length deals them back out by stride.
        flat = _jitter_list(probability, rng, 3 * n - 1)
        probs_r, probs_t, probs_s = flat[0::3], flat[1::3], flat[2::3]
        columnar.intern_int_range(n)
        tid.extend_encoded("R", [_int_column(0, n)], probs_r)
        tid.extend_encoded("T", [_int_column(0, n)], probs_t)
        if n > 1:
            tid.extend_encoded(
                "S", [_int_column(0, n - 1), _int_column(1, n)], probs_s
            )
        return tid
    for i in range(n):
        tid.add(fact("R", i), _jitter(probability, rng))
        tid.add(fact("T", i), _jitter(probability, rng))
        if i + 1 < n:
            tid.add(fact("S", i, i + 1), _jitter(probability, rng))
    return tid


def rst_bipartite_tid(
    left: int,
    right: int,
    probability: float = 0.5,
    seed: int = 0,
    density: float = 1.0,
    backend: str | None = None,
) -> TIDInstance:
    """R over left nodes, T over right nodes, S a (dense) bipartite relation.

    With ``density=1`` this is the complete bipartite workload on which the
    query ``∃xy R(x)S(x,y)T(y)`` exhibits its #P-hard behaviour (high
    treewidth); lower densities interpolate toward tree-like instances.
    """
    rng = stable_rng(seed)
    tid = TIDInstance(backend=backend)
    columnar = _columnar_of(tid)
    if columnar is not None:
        left_codes = columnar.intern_values(f"l{i}" for i in range(left))
        right_codes = columnar.intern_values(f"r{j}" for j in range(right))
        probs_r = _jitter_list(probability, rng, left)
        probs_t = _jitter_list(probability, rng, right)
        # Keep the object path's RNG sequence: one density draw per pair,
        # one jitter per kept pair.
        s_left, s_right, probs_s = [], [], []
        random = rng.random
        for i in range(left):
            for j in range(right):
                if random() < density:
                    s_left.append(int(left_codes[i]))
                    s_right.append(int(right_codes[j]))
                    jit = probability + (-0.2 + 0.4 * random())
                    probs_s.append(
                        round(
                            (0.95 if jit > 0.95 else 0.05 if jit < 0.05 else jit)
                            * 1000
                        )
                        / 1000
                    )
        if left:
            tid.extend_encoded("R", [left_codes], probs_r)
        if right:
            tid.extend_encoded("T", [right_codes], probs_t)
        if probs_s:
            tid.extend_encoded("S", [s_left, s_right], probs_s)
        return tid
    for i in range(left):
        tid.add(fact("R", f"l{i}"), _jitter(probability, rng))
    for j in range(right):
        tid.add(fact("T", f"r{j}"), _jitter(probability, rng))
    for i in range(left):
        for j in range(right):
            if rng.random() < density:
                tid.add(fact("S", f"l{i}", f"r{j}"), _jitter(probability, rng))
    return tid


def core_and_tentacles_tid(
    core_size: int,
    tentacle_count: int,
    tentacle_length: int,
    probability: float = 0.5,
    seed: int = 0,
    backend: str | None = None,
) -> TIDInstance:
    """A dense clique core with long path tentacles hanging off it.

    The partial-decomposition workload (E12): the core has treewidth
    ``core_size − 1`` while the tentacles are width-1 paths.
    """
    rng = stable_rng(seed)
    tid = TIDInstance(backend=backend)
    for i in range(core_size):
        for j in range(i + 1, core_size):
            tid.add(fact("E", f"core{i}", f"core{j}"), _jitter(probability, rng))
    for t in range(tentacle_count):
        anchor = f"core{t % core_size}"
        previous = anchor
        for step in range(tentacle_length):
            node = f"t{t}_{step}"
            tid.add(fact("E", previous, node), _jitter(probability, rng))
            previous = node
    return tid


def _jitter(probability: float, rng) -> float:
    """Perturb a base probability slightly, clamped to [0.05, 0.95].

    Quantized to ~3 decimals via integer rounding — the single-argument
    ``round`` is several times cheaper than ``round(x, 3)``'s decimal
    string path, and these are synthetic probabilities where the exact
    quantization boundary is immaterial (the two instance backends matter
    only relative to each other, and both draw through this formula).
    """
    jittered = probability + rng.uniform(-0.2, 0.2)
    return round(min(0.95, max(0.05, jittered)) * 1000) / 1000


def _jitter_list(probability: float, rng, count: int) -> list[float]:
    """``count`` draws of :func:`_jitter`, loop-inlined for the bulk paths.

    Consumes the identical RNG sequence and computes the identical floats
    (``uniform(a, b)`` is exactly ``a + (b - a) * random()``), so columnar
    bulk loads stay probability-for-probability equal to the object path.
    """
    random = rng.random
    out: list[float] = []
    append = out.append
    for _ in range(count):
        j = probability + (-0.2 + 0.4 * random())
        append(round((0.95 if j > 0.95 else 0.05 if j < 0.05 else j) * 1000) / 1000)
    return out
