"""Gate the benchmark JSONs against their committed trajectory.

CI regenerates ``BENCH_*.json`` on every push, but until this check the
fresh numbers were only *uploaded*, never *compared* — a perf regression
could merge silently as long as the benches still ran. This script closes
that hole: each job snapshots the committed JSONs into a baseline
directory before running its bench, then calls this checker, which fails
the job when a headline metric drops below an explicit tolerance.

Two kinds of metric are distinguished deliberately:

- **gated** — correctness booleans (estimates bit-identical across
  worker/host counts) and machine-independent wins (the persistent-pool
  amortization, which eliminates protocol overhead rather than exploiting
  cores) fail the job when they regress;
- **report-only** — wall-clock parallel/batch speedups, which on the known
  1-CPU CI containers honestly collapse to ~1x and swing run to run, are
  printed with their committed counterpart but never fail the job. The
  tolerance column keeps them visible so a future multicore runner can
  flip them to gated.

Usage::

    python benchmarks/check_regression.py --baseline .bench-baseline \
        BENCH_distributed_eval.json            # one file
    python benchmarks/check_regression.py      # every known file

Exit status 0 means every gated metric held; 1 means at least one
regressed (or a bench stopped emitting a headline metric entirely).
Metrics present in the fresh file but absent from the committed baseline
are treated as newly introduced and pass with a note.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (file, dotted metric path, mode, threshold).
#:
#: Modes: ``ratio`` gates ``fresh >= threshold * committed`` (a guard
#: against losing an already-achieved speedup), ``min`` gates an absolute
#: floor, ``max`` an absolute ceiling, ``true`` a correctness boolean, and
#: ``report`` prints without gating (known 1-CPU-container metrics).
HEADLINES: list[tuple[str, str, str, float | None]] = [
    ("BENCH_compiled_eval.json", "batch_speedup", "ratio", 0.2),
    ("BENCH_compiled_eval.json", "probability_batch_speedup", "ratio", 0.3),
    ("BENCH_compiled_eval.json", "kernel_batch_speedup", "report", None),
    ("BENCH_parallel_eval.json", "estimates_identical_across_worker_counts",
     "true", None),
    ("BENCH_parallel_eval.json", "speedup_at_4_workers", "report", None),
    ("BENCH_parallel_eval.json", "fused_kernel_speedup", "report", None),
    ("BENCH_distributed_eval.json", "estimates_identical_across_host_counts",
     "true", None),
    ("BENCH_distributed_eval.json", "amortization.amortized_speedup",
     "min", 1.2),
    ("BENCH_distributed_eval.json",
     "amortization.plans_republished_during_warm_repeats", "max", 0),
    ("BENCH_distributed_eval.json", "plan_wire_bytes", "report", None),
    # Shard pipelining (the fleet-transport change): keeping PIPELINE_DEPTH
    # task frames in flight must never be slower than lockstep. The bench
    # measures through a 1 ms latency relay (bare loopback has no round
    # trip to hide, so the ratio there is scheduler noise) — in that
    # regime pipelining's removal of one RTT of dead air per shard is
    # structural, machine-independent, and holds on 1 CPU. The floor is
    # 1.0 (pipelined >= unpipelined, same warm pool, same shard grid,
    # same link); the boolean pins the pipelined estimate bit-identical
    # to the local oracle.
    ("BENCH_distributed_eval.json", "pipelining.speedup_vs_unpipelined",
     "min", 1.0),
    ("BENCH_distributed_eval.json", "pipelining.estimates_identical",
     "true", None),
    # E17 compile path. The speedup floors sit under the measured numbers
    # (6.3x / 29.5x / 11.2x / 9.4x locally) with CI-noise headroom; the
    # booleans pin every fast path bit-identical to the per-gate python
    # lowering. Without numpy the speedups honestly collapse to ~1x, so a
    # numpy-less runner must use --report-only (as the no-numpy CI job
    # already does); the correctness booleans still gate there.
    ("BENCH_compile_path.json", "vectorized_speedup", "min", 4.0),
    ("BENCH_compile_path.json", "delta_speedup_vs_cold_python", "min", 15.0),
    ("BENCH_compile_path.json", "delta_recompile_speedup", "min", 4.0),
    ("BENCH_compile_path.json", "cache_hit_speedup", "min", 5.0),
    ("BENCH_compile_path.json", "cache_hit_lower_seconds", "max", 0.015),
    ("BENCH_compile_path.json", "vectorized_equals_python", "true", None),
    ("BENCH_compile_path.json", "delta_equals_fresh", "true", None),
    ("BENCH_compile_path.json", "cache_loaded_equals_fresh", "true", None),
    # E18 columnar pipeline. The speedup floor sits under the measured
    # ~12x with CI-noise headroom; the booleans pin the columnar pipeline
    # bit-identical (circuits, lowerings, Monte-Carlo marginals) to the
    # object path, and the 10^6-fact run must finish without materializing
    # a single Fact object. Without numpy the speedup honestly collapses
    # (scalar fallbacks) — a numpy-less runner must use --report-only.
    ("BENCH_columnar_pipeline.json", "speedup_at_1e5", "min", 6.0),
    ("BENCH_columnar_pipeline.json", "pipeline_bit_identical", "true", None),
    ("BENCH_columnar_pipeline.json", "marginals_bit_identical", "true", None),
    ("BENCH_columnar_pipeline.json", "columnar_1e6_completed", "true", None),
    ("BENCH_columnar_pipeline.json", "columnar_1e6_facts_materialized",
     "max", 0),
    # E19 query service. The speedup floor sits well under the measured
    # ~3x (coalescing eliminates per-request kernel launches, so like the
    # E15 amortization headline it holds on 1 CPU); the passes ceiling
    # pins that coalescing actually merges requests (measured 0.023
    # passes/request at 64 clients — 0.5 allows heavy scheduler jitter
    # but not a silent fall-back to one-pass-per-request); the boolean
    # pins every served marginal to probability_batch *bitwise* — the
    # batch plan routes single-row passes through the wide-batch
    # reduction order, so even the one-row-per-pass uncoalesced baseline
    # produces identical doubles (see bench_service.py).
    # Without numpy a matrix pass degenerates to per-row scalar loops and
    # the speedup honestly collapses — a numpy-less runner must use
    # --report-only; the correctness boolean still gates there.
    ("BENCH_service.json", "coalescing_speedup_at_64", "min", 1.5),
    ("BENCH_service.json", "passes_per_request_at_64", "max", 0.5),
    ("BENCH_service.json", "served_matches_direct", "true", None),
    ("BENCH_service.json", "p99_ms_coalesced_at_64", "report", None),
    ("BENCH_service.json", "p99_ms_uncoalesced_at_64", "report", None),
    # E20 certain answers. All machine-independent: the classifier must
    # keep the three canonical Koutris–Wijsen queries in their published
    # trichotomy classes (stable under atom reordering), every routed
    # answer must bit-match the all-repairs oracle across the whole
    # rate x seed grid, and the FO route must answer without compiling a
    # single circuit. The rewrite-vs-circuit-fallback speedup is
    # wall-clock and stays report-only like every other timing headline.
    ("BENCH_cqa.json", "classifier_matches_published_classes", "true", None),
    ("BENCH_cqa.json", "fo_matches_oracle", "true", None),
    ("BENCH_cqa.json", "ptime_matches_oracle", "true", None),
    ("BENCH_cqa.json", "conp_matches_oracle", "true", None),
    ("BENCH_cqa.json", "fo_no_circuit_compiles", "true", None),
    ("BENCH_cqa.json", "fo_speedup_vs_circuit", "report", None),
]


def _lookup(blob: dict, dotted: str):
    value = blob
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def _format(value) -> str:
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def check_file(name: str, fresh_dir: Path, baseline_dir: Path,
               report_only: bool) -> list[str]:
    """Check one bench file; returns the list of failure descriptions."""
    failures: list[str] = []
    fresh_path = fresh_dir / name
    if not fresh_path.exists():
        return [f"{name}: fresh benchmark output missing at {fresh_path}"]
    fresh = json.loads(fresh_path.read_text())
    baseline_path = baseline_dir / name
    committed = (
        json.loads(baseline_path.read_text()) if baseline_path.exists() else None
    )
    if committed is None:
        print(f"{name}: no committed baseline at {baseline_path}; "
              "reporting fresh values only")
    for file_name, metric, mode, threshold in HEADLINES:
        if file_name != name:
            continue
        fresh_value = _lookup(fresh, metric)
        committed_value = _lookup(committed, metric) if committed else None
        label = f"{name}:{metric}"
        if fresh_value is None:
            failures.append(f"{label}: missing from the fresh benchmark output")
            continue
        if mode != "report" and committed is not None and committed_value is None:
            print(f"  {label} = {_format(fresh_value)} "
                  "(newly introduced metric; nothing committed to gate against)")
            continue
        # A ratio gate is relative to the committed number; without any
        # baseline snapshot there is nothing to anchor it, so report.
        effective_mode = (
            "report"
            if (report_only and mode != "true")
            or (mode == "ratio" and committed_value is None)
            else mode
        )
        verdict, detail = _judge(
            effective_mode, fresh_value, committed_value, threshold
        )
        print(f"  {label}: fresh {_format(fresh_value)}"
              + (f" vs committed {_format(committed_value)}"
                 if committed_value is not None else "")
              + f" — {detail}")
        if not verdict:
            # Failure lines must stand alone in the job log: say what was
            # measured and what would have passed, not just which gate fired.
            expected = {
                "true": "expected true",
                "min": f"expected >= {threshold}",
                "max": f"expected <= {threshold}",
                "ratio": (f"expected >= {threshold}x committed "
                          f"{_format(committed_value)}"),
            }.get(effective_mode, "")
            failures.append(
                f"{label}: {detail} (actual {_format(fresh_value)}"
                + (f", committed {_format(committed_value)}"
                   if committed_value is not None else "")
                + (f"; {expected}" if expected else "") + ")"
            )
    return failures


def _judge(mode: str, fresh, committed, threshold) -> tuple[bool, str]:
    if mode == "report":
        return True, "report-only (not gated; see module docstring)"
    if mode == "true":
        ok = bool(fresh)
        return ok, "holds" if ok else "correctness flag regressed to falsy"
    if mode == "min":
        ok = float(fresh) >= float(threshold)
        return ok, (f"gated at >= {threshold}" if ok
                    else f"below the {threshold} floor")
    if mode == "max":
        ok = float(fresh) <= float(threshold)
        return ok, (f"gated at <= {threshold}" if ok
                    else f"above the {threshold} ceiling")
    if mode == "ratio":
        floor = float(threshold) * float(committed)
        ok = float(fresh) >= floor
        return ok, (f"gated at >= {threshold}x committed ({floor:.4g})" if ok
                    else f"dropped below {threshold}x committed ({floor:.4g})")
    raise ValueError(f"unknown gate mode {mode!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*",
        default=sorted({name for name, *_rest in HEADLINES}),
        help="bench JSONs to check (default: every known one)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=Path(".bench-baseline"),
        help="directory holding the committed BENCH_*.json snapshots",
    )
    parser.add_argument(
        "--fresh", type=Path, default=Path(__file__).resolve().parents[1],
        help="directory holding the freshly generated BENCH_*.json files "
        "(default: the repository root)",
    )
    parser.add_argument(
        "--report-only", action="store_true",
        help="never fail on speedup gates (correctness booleans still gate)",
    )
    args = parser.parse_args(argv)
    known = {name for name, *_rest in HEADLINES}
    failures: list[str] = []
    for name in args.files:
        if name not in known:
            failures.append(f"{name}: no headline metrics registered "
                            f"(known: {', '.join(sorted(known))})")
            continue
        print(f"checking {name}")
        failures.extend(
            check_file(name, args.fresh, args.baseline, args.report_only)
        )
    if failures:
        print("\nBENCH REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall gated benchmark metrics held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
