"""Integration tests: end-to-end scenarios crossing several subsystems.

Each test exercises a realistic pipeline the paper motivates, checking the
final numbers against independent oracles.
"""

import math
import random

import networkx as nx
import pytest
from types import SimpleNamespace

from repro.baselines import pcc_probability_enumerate, tid_probability_enumerate
from repro.circuits import circuit_stats, to_dot
from repro.conditioning import ConditionedInstance, SimulatedCrowd, run_crowd_session
from repro.core import (
    AllDegreesEvenAutomaton,
    STConnectivityAutomaton,
    answer_probabilities,
    build_lineage,
    conjunction,
    negation,
    pcc_probability,
    tid_probability,
)
from repro.events import var
from repro.instances import Instance, PCInstance, TIDInstance, fact, pcc_from_pc
from repro.prxml import path_pattern, query_probability, query_probability_enumerate
from repro.queries import atom, cq, ucq, variables
from repro.rules import probabilistic_chase
from repro.workloads import (
    CITIZEN_RULES,
    figure1_document,
    partial_ktree_tid,
    table1_pc_instance,
    wikidata_like_document,
)

X, Y, Z = variables("x", "y", "z")


class TestChaseThenCondition:
    """Probabilistic rules produce a pcc-instance; conditioning refines it."""

    def test_observing_consequence_raises_premise(self):
        kb = Instance(
            [
                fact("Citizen", "alice", "fr"),
                fact("OfficialLanguage", "fr", "french"),
            ]
        )
        chased = probabilistic_chase(kb, CITIZEN_RULES, rounds=3)
        speaks = fact("Speaks", "alice", "french")
        lives = fact("LivesIn", "alice", "fr")
        prior_lives = chased.fact_probability_enumerate(lives)
        conditioned = ConditionedInstance(chased).observe_fact(speaks, True)
        posterior_lives = conditioned.fact_probability(lives)
        # Speaking implies having lived (the only derivation path).
        assert math.isclose(prior_lives, 0.8)
        assert math.isclose(posterior_lives, 1.0)

    def test_observing_absence_lowers_posterior(self):
        kb = Instance(
            [
                fact("Citizen", "alice", "fr"),
                fact("OfficialLanguage", "fr", "french"),
            ]
        )
        chased = probabilistic_chase(kb, CITIZEN_RULES, rounds=3)
        speaks = fact("Speaks", "alice", "french")
        lives = fact("LivesIn", "alice", "fr")
        conditioned = ConditionedInstance(chased).observe_fact(speaks, False)
        posterior = conditioned.fact_probability(lives)
        # P(lives | ¬speaks) = P(lives ∧ ¬fire2)/P(¬speaks) = 0.8*0.1/0.28
        assert math.isclose(posterior, 0.8 * 0.1 / (1.0 - 0.72))


class TestCrowdOnChasedKB:
    """Crowd conditioning on top of the probabilistic chase output."""

    def test_session_converges_to_truth(self):
        kb = Instance(
            [
                fact("Citizen", "alice", "fr"),
                fact("OfficialLanguage", "fr", "french"),
            ]
        )
        chased = probabilistic_chase(kb, CITIZEN_RULES, rounds=3)
        query = cq(atom("Speaks", "alice", "french"))
        truth = {e: True for e in chased.space.events()}
        crowd = SimulatedCrowd(truth, error_rate=0.0)
        session = run_crowd_session(chased, query, crowd, budget=3, policy="greedy")
        assert math.isclose(session.final_probability, 1.0)
        assert session.entropies()[-1] == 0.0


class TestPrXMLAgainstRelationalRendering:
    """The same uncertainty modeled as PrXML and as a pc-instance agrees."""

    def test_figure1_two_renderings(self):
        doc = figure1_document()
        p_xml = query_probability(doc, path_pattern("surname", "Manning"))

        pc = PCInstance()
        pc.add_event("eJane", 0.9)
        pc.add(fact("Statement", "surname", "Manning"), var("eJane"))
        pc.add(fact("Statement", "pob", "Crescent"), var("eJane"))
        pcc = pcc_from_pc(pc)
        p_rel = pcc_probability(cq(atom("Statement", "surname", Y)), pcc)
        assert math.isclose(p_xml, p_rel)

    @pytest.mark.parametrize("seed", range(3))
    def test_wikidata_document_engine_vs_enumeration(self, seed):
        doc = wikidata_like_document(2, contributors=2, seed=seed)
        pattern = path_pattern("statement")
        assert math.isclose(
            query_probability(doc, pattern),
            query_probability_enumerate(doc, pattern),
            abs_tol=1e-9,
        )


class TestMSOCombinations:
    """Boolean combinations of automata against combined oracles."""

    def test_eulerian_and_connected(self):
        tid = TIDInstance(
            {
                fact("E", 1, 2): 0.6,
                fact("E", 2, 3): 0.6,
                fact("E", 3, 1): 0.6,
                fact("E", 3, 4): 0.4,
            }
        )
        even = AllDegreesEvenAutomaton()
        reach = STConnectivityAutomaton(1, 3)
        both = conjunction(even, reach)

        def oracle(world):
            graph = nx.MultiGraph()
            graph.add_nodes_from([1, 3])
            for f in world.facts():
                if f.relation == "E":
                    graph.add_edge(*f.args)
            degrees_even = all(d % 2 == 0 for _v, d in graph.degree)
            return degrees_even and nx.has_path(graph, 1, 3)

        assert math.isclose(
            tid_probability(both, tid),
            tid_probability_enumerate(SimpleNamespace(holds_in=oracle), tid),
            abs_tol=1e-9,
        )

    def test_negated_cq_is_triangle_freeness(self):
        triangle = cq(atom("E", X, Y), atom("E", Y, Z), atom("E", Z, X))
        from repro.core import automaton_for

        no_triangle = negation(automaton_for(triangle))
        tid = TIDInstance(
            {
                fact("E", 1, 2): 0.5,
                fact("E", 2, 3): 0.5,
                fact("E", 3, 1): 0.5,
                fact("E", 3, 4): 0.5,
            }
        )

        def oracle(world):
            return not triangle.holds_in(world)

        assert math.isclose(
            tid_probability(no_triangle, tid),
            tid_probability_enumerate(SimpleNamespace(holds_in=oracle), tid),
            abs_tol=1e-9,
        )


class TestRankedAnswersOnTable1:
    def test_destination_ranking(self):
        pcc = pcc_from_pc(table1_pc_instance(0.7, 0.5))
        # Rank destinations reachable from Paris CDG by probability — via the
        # per-answer engine on the TID rendering of the marginals.
        tid = TIDInstance()
        for f in pcc.facts():
            tid.add(f, pcc.fact_probability_enumerate(f))
        query = cq(atom("Trip", "Paris CDG", Y))
        ranked = answer_probabilities(query, (Y,), tid)
        assert ranked[0].values == ("Melbourne MEL",)
        assert math.isclose(ranked[0].probability, 0.7)


class TestDiagnostics:
    def test_lineage_stats_and_dot(self):
        generated = partial_ktree_tid(10, 2, seed=0)
        lineage = build_lineage(
            generated.tid.instance,
            cq(atom("E", X, Y)),
            generated.decomposition,
        )
        stats = circuit_stats(lineage.circuit)
        assert stats.total > 0
        assert stats.variables <= len(generated.tid)
        dot = to_dot(lineage.circuit, max_gates=10_000)
        assert dot.startswith("digraph")
        assert f"g{lineage.circuit.output}" in dot


class TestUCQAcrossSubsystems:
    @pytest.mark.parametrize("seed", range(3))
    def test_ucq_on_pcc_matches_enumeration(self, seed):
        rng = random.Random(seed)
        pc = PCInstance()
        for e in range(3):
            pc.add_event(f"e{e}", round(rng.uniform(0.2, 0.8), 2))
        for i in range(3):
            pc.add(fact("A", i), var(f"e{rng.randrange(3)}"))
            pc.add(fact("B", i, i + 1), var(f"e{rng.randrange(3)}"))
        pcc = pcc_from_pc(pc)
        query = ucq(cq(atom("A", X), atom("B", X, Y)), cq(atom("B", X, X)))
        assert math.isclose(
            pcc_probability(query, pcc),
            pcc_probability_enumerate(query, pcc),
            abs_tol=1e-9,
        )
