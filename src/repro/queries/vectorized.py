"""Vectorized CQ/UCQ evaluation on columnar instances.

The columnar half of the query layer: conjunctive queries evaluate as a
pipeline of hash joins over the dictionary-encoded columns of a
:class:`repro.instances.columnar.ColumnarInstance` — one column
select/filter per atom, one order-preserving join per conjunction step —
with every intermediate row carrying its *witness fact ids* (one per atom
joined so far) as extra lineage columns, U-relation style.

Order is load-bearing: the join enumerates result rows in exactly the
order the object backend's backtracking search
(:meth:`repro.queries.cq.ConjunctiveQuery.homomorphisms`) yields bindings
— left rows in order, right matches in fact-insertion order (a stable
argsort groups equal keys by original row index). The provenance builder
relies on this to produce bit-identical circuits from either backend.

Everything here requires numpy; callers dispatch through
:func:`vectorized_available` and fall back to backtracking over
materialized facts otherwise.
"""

from __future__ import annotations

from repro.instances.columnar import ColumnarInstance, columnar_numpy

_PACK = 1 << 31


def vectorized_available() -> bool:
    """Whether the vectorized join pipeline can run (numpy importable)."""
    return columnar_numpy() is not None


class JoinResult:
    """All homomorphisms of a CQ into a columnar instance, as columns.

    ``var_columns`` maps each query variable to an int64 code column;
    ``witnesses`` is an ``(n_rows, n_atoms)`` int64 matrix of global fact
    ids, columns in *original* ``query.atoms`` order. Row order matches
    the object backend's backtracking enumeration exactly.
    """

    __slots__ = ("instance", "n_rows", "var_columns", "witnesses")

    def __init__(self, instance, n_rows, var_columns, witnesses):
        self.instance = instance
        self.n_rows = n_rows
        self.var_columns = var_columns
        self.witnesses = witnesses

    def bindings(self):
        """Decode the rows into binding dicts (oracle cross-checks only)."""
        decode = self.instance.decode
        names = list(self.var_columns)
        cols = [self.var_columns[v].tolist() for v in names]
        for row in range(self.n_rows):
            yield {v: decode(col[row]) for v, col in zip(names, cols)}


def _empty(instance, query, np):
    return JoinResult(
        instance, 0, {}, np.zeros((0, len(query.atoms)), dtype=np.int64)
    )


def _candidate_rows(instance: ColumnarInstance, atom_, np):
    """Filter one atom against its relation's columns.

    Returns ``(columns, fact_ids, kept_row_indices)`` with constants and
    within-atom repeated variables applied, or ``None`` when no row can
    match (unknown relation/constant, arity mismatch).
    """
    from repro.queries.cq import Variable

    arrays = instance.relation_arrays(atom_.relation)
    if arrays is None:
        return None
    raw_cols, raw_fids = arrays
    if len(raw_cols) != len(atom_.terms):
        return None
    n = len(raw_fids)
    cols = [
        np.frombuffer(col, dtype=np.int32).astype(np.int64) for col in raw_cols
    ]
    fids = np.frombuffer(raw_fids, dtype=np.int32).astype(np.int64)
    mask = None
    first_position: dict = {}
    for position, term in enumerate(atom_.terms):
        if isinstance(term, Variable):
            seen = first_position.get(term)
            if seen is None:
                first_position[term] = position
            else:
                condition = cols[seen] == cols[position]
                mask = condition if mask is None else (mask & condition)
        else:
            code = instance.encode(term)
            if code is None:
                return None
            condition = cols[position] == code
            mask = condition if mask is None else (mask & condition)
    if mask is not None:
        kept = np.flatnonzero(mask)
        cols = [c[kept] for c in cols]
        fids = fids[kept]
        n = len(kept)
    return cols, fids, first_position, n


def _joint_pack(left_cols, right_cols, np):
    """Pack parallel multi-column keys on both join sides consistently.

    Two int32 codes fold exactly into an int64; for wider keys the partial
    keys are re-encoded jointly (one ``np.unique`` over both sides) before
    each further fold, so equal tuples keep equal packed keys.
    """
    left = left_cols[0]
    right = right_cols[0]
    for lc, rc in zip(left_cols[1:], right_cols[1:]):
        if left.size or right.size:
            high = max(
                int(left.max(initial=0)), int(right.max(initial=0))
            )
            if high >= _PACK:
                merged = np.concatenate([left, right])
                _, inverse = np.unique(merged, return_inverse=True)
                left = inverse[: len(left)]
                right = inverse[len(left) :]
        left = left * _PACK + lc
        right = right * _PACK + rc
    return left, right


def evaluate_cq(query, instance: ColumnarInstance) -> JoinResult:
    """All homomorphisms of ``query`` into ``instance``, vectorized.

    Joins atoms in the same connectivity-aware order as the backtracking
    search and preserves its enumeration order row for row.
    """
    from repro.queries.cq import Variable, _atom_order_indices

    np = columnar_numpy()
    order = _atom_order_indices(query.atoms)

    state_cols: dict = {}  # Variable -> int64 code column
    state_witness: list = []  # per processed atom: int64 fact-id column
    n_rows = -1  # -1: before the first atom (one empty row)

    for atom_index in order:
        atom_ = query.atoms[atom_index]
        candidate = _candidate_rows(instance, atom_, np)
        if candidate is None:
            return _empty(instance, query, np)
        cols, fids, first_position, n_cand = candidate
        atom_vars = [
            (term, first_position[term])
            for term in dict.fromkeys(
                t for t in atom_.terms if isinstance(t, Variable)
            )
        ]
        shared = [(v, p) for v, p in atom_vars if v in state_cols]
        fresh = [(v, p) for v, p in atom_vars if v not in state_cols]
        if n_rows == -1:
            left_idx = None
            right_idx = np.arange(n_cand, dtype=np.int64)
        elif not shared:
            # No shared variables: cross product, left rows outer (exactly
            # the backtracking nesting).
            left_idx = np.repeat(np.arange(n_rows, dtype=np.int64), n_cand)
            right_idx = np.tile(np.arange(n_cand, dtype=np.int64), n_rows)
        else:
            left_key, right_key = _joint_pack(
                [state_cols[v] for v, _p in shared],
                [cols[p] for _v, p in shared],
                np,
            )
            sort = np.argsort(right_key, kind="stable")
            right_sorted = right_key[sort]
            starts = np.searchsorted(right_sorted, left_key, side="left")
            ends = np.searchsorted(right_sorted, left_key, side="right")
            counts = ends - starts
            total = int(counts.sum())
            left_idx = np.repeat(np.arange(n_rows, dtype=np.int64), counts)
            if total:
                offsets = np.cumsum(counts) - counts
                within = np.arange(total, dtype=np.int64) - np.repeat(
                    offsets, counts
                )
                right_idx = sort[np.repeat(starts, counts) + within]
            else:
                right_idx = np.zeros(0, dtype=np.int64)
        if left_idx is None:
            state_witness = [fids[right_idx]]
            state_cols = {v: cols[p][right_idx] for v, p in atom_vars}
        else:
            state_witness = [w[left_idx] for w in state_witness]
            state_witness.append(fids[right_idx])
            state_cols = {
                v: col[left_idx] for v, col in state_cols.items()
            }
            for v, p in fresh:
                state_cols[v] = cols[p][right_idx]
        n_rows = len(state_witness[-1])
        if n_rows == 0:
            return _empty(instance, query, np)

    witnesses = np.empty((n_rows, len(query.atoms)), dtype=np.int64)
    for processed, atom_index in enumerate(order):
        witnesses[:, atom_index] = state_witness[processed]
    return JoinResult(instance, n_rows, state_cols, witnesses)


def cq_holds(query, instance: ColumnarInstance) -> bool:
    """Boolean CQ evaluation on a columnar instance."""
    return evaluate_cq(query, instance).n_rows > 0
