"""Synthetic knowledge-base workloads for the probabilistic-rules experiments.

A small people/cities/countries KB with the paper's own example rules:
"a citizen of a country often lives in that country, and probably speaks the
official language of the country"; plus the existential example "a PhD
student and their advisor have probably co-authored some paper".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.instances.base import AbstractInstance, fact
from repro.instances.columnar import make_instance
from repro.queries.cq import atom, variables
from repro.rules.probabilistic import ProbabilisticRule
from repro.rules.tgds import rule
from repro.util import stable_rng

X, Y, Z = variables("x", "y", "z")

CITIZEN_RULES = (
    # Citizens usually live in their country.
    ProbabilisticRule(
        rule([atom("Citizen", X, Y)], [atom("LivesIn", X, Y)]), 0.8
    ),
    # Residents probably speak the official language.
    ProbabilisticRule(
        rule(
            [atom("LivesIn", X, Y), atom("OfficialLanguage", Y, Z)],
            [atom("Speaks", X, Z)],
        ),
        0.9,
    ),
)

ADVISOR_RULES = (
    # A PhD student and their advisor have probably co-authored some paper
    # (the head invents the paper: an existential).
    ProbabilisticRule(
        rule(
            [atom("AdvisedBy", X, Y)],
            [atom("Author", X, Z), atom("Author", Y, Z)],
        ),
        0.7,
    ),
)


@dataclass
class KBWorkload:
    """A generated KB instance with its soft rules."""

    instance: AbstractInstance
    rules: tuple[ProbabilisticRule, ...]


def citizenship_kb(
    people: int, countries: int = 3, seed: int = 0, backend: str | None = None
) -> KBWorkload:
    """People with citizenships; countries with official languages."""
    rng = stable_rng(seed)
    inst = make_instance(backend)
    languages = ["english", "french", "german", "spanish"]
    for c in range(countries):
        inst.add(fact("OfficialLanguage", f"country{c}", languages[c % len(languages)]))
    for p in range(people):
        country = f"country{rng.randrange(countries)}"
        inst.add(fact("Citizen", f"person{p}", country))
        if rng.random() < 0.3:
            # Some residences are already known (hard facts).
            inst.add(fact("LivesIn", f"person{p}", country))
    return KBWorkload(instance=inst, rules=CITIZEN_RULES)


def advisor_kb(
    students: int, seed: int = 0, backend: str | None = None
) -> KBWorkload:
    """PhD students with advisors; some papers already known."""
    rng = stable_rng(seed)
    inst = make_instance(backend)
    for s in range(students):
        advisor = f"prof{s % max(1, students // 2)}"
        inst.add(fact("AdvisedBy", f"student{s}", advisor))
        if rng.random() < 0.3:
            inst.add(fact("Author", f"student{s}", f"paper{s}"))
            inst.add(fact("Author", advisor, f"paper{s}"))
    return KBWorkload(instance=inst, rules=ADVISOR_RULES)
