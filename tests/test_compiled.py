"""Tests for the compiled circuit IR and the unified evaluation layer."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    ENUMERATION_VARIABLE_CAP,
    Circuit,
    CompiledCircuit,
    available_engines,
    compile_circuit,
    default_engine,
    default_engine_set,
    engine_forced,
    get_engine,
    probability,
    register_engine,
    set_default_engine,
)
from repro.circuits.compiled import K_AND, K_NOT, K_OR, K_TRUE, K_VAR
from repro.core import build_lineage
from repro.events import EventSpace
from repro.instances import TIDInstance, fact
from repro.queries import atom, cq, variables
from repro.util import ReproError, stable_rng


def random_circuit(seed: int, n_vars: int = 5, steps: int = 12) -> Circuit:
    rng = stable_rng(seed)
    c = Circuit()
    names = [f"v{i}" for i in range(n_vars)]
    gates = [c.variable(n) for n in names] + [c.true(), c.false()]
    for _ in range(rng.randint(2, steps)):
        op = rng.choice(["and", "or", "not"])
        if op == "not":
            gates.append(c.negation(rng.choice(gates)))
        else:
            picked = rng.sample(gates, rng.randint(2, min(4, len(gates))))
            gates.append(c.and_gate(picked) if op == "and" else c.or_gate(picked))
    c.set_output(gates[-1])
    return c


def random_chain_tid(seed: int, length: int = 4) -> TIDInstance:
    rng = stable_rng(seed)
    tid = TIDInstance()
    for i in range(length):
        tid.add(fact("R", i), round(rng.random(), 3))
        tid.add(fact("T", i), round(rng.random(), 3))
        if i + 1 < length:
            tid.add(fact("S", i, i + 1), round(rng.random(), 3))
    return tid


class TestLowering:
    def test_csr_structure_is_topological(self):
        c = random_circuit(7)
        compiled = compile_circuit(c)
        assert compiled.size == len(c.reachable_from_output())
        for pos in range(compiled.size):
            for child in compiled.inputs_of(pos):
                assert child < pos  # inputs precede their gate

    def test_kind_codes_match_arena(self):
        c = Circuit()
        g = c.and_gate([c.variable("a"), c.negation(c.variable("b")), c.true()])
        c.set_output(c.or_gate([g, c.variable("b")]))
        compiled = compile_circuit(c)
        kinds = set(compiled.kinds)
        assert K_VAR in kinds and K_AND in kinds and K_OR in kinds and K_NOT in kinds
        assert K_TRUE not in kinds  # constant-folded away by and_gate

    def test_variables_interned_once(self):
        c = Circuit()
        c.set_output(c.or_gate([c.variable("x"), c.negation(c.variable("x"))]))
        compiled = compile_circuit(c)
        assert compiled.variables() == ("x",)

    def test_compile_requires_output(self):
        with pytest.raises(ReproError, match="no output"):
            compile_circuit(Circuit())

    def test_compile_cache_reused_and_invalidated(self):
        c = random_circuit(3)
        first = compile_circuit(c)
        assert compile_circuit(c) is first
        # Mutating the arena (new gate + new output) must recompile.
        c.set_output(c.and_gate([c.output, c.variable("fresh")]))
        second = compile_circuit(c)
        assert second is not first
        assert "fresh" in second.variables()

    def test_compiled_passthrough(self):
        compiled = compile_circuit(random_circuit(11))
        assert compile_circuit(compiled) is compiled

    def test_missing_valuation_variable(self):
        compiled = compile_circuit(random_circuit(2))
        with pytest.raises(ReproError, match="missing variable"):
            compiled.evaluate({})

    def test_set_output_round_trip_is_not_stale(self):
        """The memo is keyed per (version, output): toggling the output
        back and forth returns each output's own lowering, cached."""
        c = random_circuit(3)
        original_output = c.output
        first = compile_circuit(c)
        other = c.negation(original_output)
        c.set_output(other)
        flipped = compile_circuit(c)
        assert flipped is not first
        assert flipped.output != first.output or flipped.kinds != first.kinds
        c.set_output(original_output)
        assert compile_circuit(c) is first  # same version + output: cached
        c.set_output(other)
        assert compile_circuit(c) is flipped


def _apply_edits(c: Circuit, seed: int, n_edits: int) -> None:
    """Append random gates and re-point the output (arena only grows)."""
    rng = stable_rng(seed)
    gates = list(range(len(c)))
    last = c.output
    for i in range(n_edits):
        op = rng.choice(["and", "or", "not", "var", "extend"])
        if op == "var":
            gate = c.variable(f"edit{seed}_{i}")
        elif op == "not":
            gate = c.negation(rng.choice(gates))
        elif op == "extend" and last is not None:
            # keep the previous output inside the new cone (delta-friendly)
            gate = c.or_gate([last, rng.choice(gates)])
        else:
            picked = rng.sample(gates, rng.randint(2, min(4, len(gates))))
            gate = c.and_gate(picked) if op == "and" else c.or_gate(picked)
        gates.append(gate)
        last = gate
    c.set_output(last)


class TestRecompile:
    def test_append_only_edit_takes_the_delta_path(self):
        from repro.circuits import compile_stats, recompile

        c = random_circuit(17, n_vars=8, steps=40)
        old = compile_circuit(c)
        before = compile_stats()
        c.set_output(c.or_gate([c.output, c.variable("appended")]))
        updated = recompile(old, c)
        after = compile_stats()
        assert after["delta_recompiles"] - before["delta_recompiles"] == 1
        assert after["lowerings"] == before["lowerings"]
        assert "appended" in updated.var_names
        fresh = CompiledCircuit(c)
        assert updated.kinds == fresh.kinds
        assert updated.indices == fresh.indices
        assert updated.gate_ids == fresh.gate_ids

    def test_noop_edit_returns_the_same_object(self):
        from repro.circuits import recompile

        c = random_circuit(18)
        old = compile_circuit(c)
        c.variable("never_referenced")  # grows the arena, not the cone
        assert recompile(old, c) is old

    def test_cone_divergence_falls_back_to_full_compile(self):
        from repro.circuits import recompile

        c = random_circuit(19, n_vars=6, steps=30)
        old = compile_circuit(c)
        # New output that does NOT contain the old output gate's cone.
        c.set_output(c.and_gate([c.variable("solo"), c.variable("duo")]))
        updated = recompile(old, c)
        fresh = CompiledCircuit(c)
        assert updated.kinds == fresh.kinds
        assert updated.var_names == fresh.var_names
        assert updated.output == fresh.output

    def test_recompile_requires_a_compiled_old_plan(self):
        from repro.circuits import recompile

        with pytest.raises(ReproError, match="CompiledCircuit"):
            recompile(object(), random_circuit(1))


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=25),
)
def test_recompile_is_gate_for_gate_identical_to_fresh_compile(seed, n_edits):
    """Property: after any append-only edit sequence, ``recompile`` against
    the previous lowering produces exactly the arrays a from-scratch
    compile would — same CSR, same interning, same levels, same gate map —
    whether it took the delta fast path or fell back."""
    from repro.circuits import recompile

    c = random_circuit(seed, n_vars=6, steps=20)
    old = compile_circuit(c)
    _apply_edits(c, seed + 1, n_edits)
    updated = recompile(old, c)
    fresh = CompiledCircuit(c)
    assert updated.kinds == fresh.kinds
    assert updated.offsets == fresh.offsets
    assert updated.indices == fresh.indices
    assert updated.var_slot == fresh.var_slot
    assert updated.var_names == fresh.var_names
    assert updated.output == fresh.output
    assert updated.gate_ids == fresh.gate_ids
    assert updated.levels_list() == fresh.levels_list()
    rng = stable_rng(seed + 2)
    for _ in range(4):
        world = {name: rng.random() < 0.5 for name in fresh.var_names}
        assert updated.evaluate(world) == fresh.evaluate(world)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_vectorized_lowering_matches_python_lowering(seed):
    """Property: above ``VECTOR_MIN_GATES`` the array-pass lowering and the
    per-gate python lowering are indistinguishable."""
    from repro.circuits import compiled as compiled_module

    pytest.importorskip("numpy")
    c = random_circuit(seed, n_vars=12, steps=700)
    while len(c) < compiled_module.VECTOR_MIN_GATES:
        c.set_output(c.or_gate([c.output, c.variable(f"pad{len(c)}")]))
    vectorized = CompiledCircuit(c)
    assert vectorized._np32 is not None  # the vector path actually ran
    saved = compiled_module._np
    try:
        compiled_module._np = None
        scalar = CompiledCircuit(c)
    finally:
        compiled_module._np = saved
    assert vectorized.kinds == scalar.kinds
    assert vectorized.offsets == scalar.offsets
    assert vectorized.indices == scalar.indices
    assert vectorized.var_slot == scalar.var_slot
    assert vectorized.var_names == scalar.var_names
    assert vectorized.output == scalar.output
    assert vectorized.gate_ids == scalar.gate_ids
    assert vectorized.levels_list() == scalar.levels_list()


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=31))
def test_compiled_evaluate_matches_object_graph(seed, mask):
    """Property: CompiledCircuit.evaluate == Circuit.evaluate on random input."""
    c = random_circuit(seed)
    compiled = compile_circuit(c)
    names = sorted({f"v{i}" for i in range(5)})
    valuation = {n: bool(mask >> i & 1) for i, n in enumerate(names)}
    assert compiled.evaluate(valuation) == c.evaluate(valuation)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_compiled_batch_matches_single_evaluation(seed):
    """Property: evaluate_batch agrees with evaluate row by row."""
    c = random_circuit(seed)
    compiled = compile_circuit(c)
    names = [f"v{i}" for i in range(5)]
    rows = [
        {n: bool(mask >> i & 1) for i, n in enumerate(names)} for mask in range(32)
    ]
    batch = compiled.evaluate_batch(rows)
    assert batch == [c.evaluate(row) for row in rows]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_all_engines_agree_on_random_circuits(seed):
    """Property: every registered general engine matches the oracle."""
    c = random_circuit(seed)
    space = EventSpace({f"v{i}": 0.1 + 0.15 * i for i in range(5)})
    reference = probability(c, space, engine="enumerate")
    for engine in ("shannon", "message_passing"):
        assert math.isclose(
            probability(c, space, engine=engine), reference, abs_tol=1e-9
        ), engine


@pytest.mark.parametrize("seed", range(8))
def test_all_engines_agree_on_tid_lineages(seed):
    """All registered engines agree within 1e-9 on shared random TID instances.

    Lineage circuits from the Theorem-1 pipeline are deterministic and
    decomposable, so even the ``dd`` engine is exact here.
    """
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = random_chain_tid(seed)
    lineage = build_lineage(tid.instance, query)
    space = tid.event_space()
    results = {
        engine: probability(lineage.circuit, space, engine=engine)
        for engine in available_engines()
    }
    reference = results["enumerate"]
    for engine, value in results.items():
        assert math.isclose(value, reference, abs_tol=1e-9), (engine, value, reference)


class TestProbabilityFastPaths:
    def test_dd_pass_on_marginal_sequence(self):
        c = Circuit()
        c.set_output(c.and_gate([c.variable("a"), c.variable("b")]))
        compiled = compile_circuit(c)
        by_slot = [0.25 if n == "a" else 0.5 for n in compiled.variables()]
        assert math.isclose(compiled.probability(by_slot), 0.125)
        assert math.isclose(compiled.probability({"a": 0.25, "b": 0.5}), 0.125)

    def test_enumeration_cap_names_the_limit(self):
        c = Circuit()
        c.set_output(c.or_gate([c.variable(f"v{i}") for i in range(30)]))
        compiled = compile_circuit(c)
        space = EventSpace({f"v{i}": 0.5 for i in range(30)})
        assert ENUMERATION_VARIABLE_CAP == 26
        with pytest.raises(ReproError, match="26 variables"):
            compiled.probability_enumerate(space)

    def test_large_fan_in_uses_reduction_path(self):
        # Fan-in beyond the infix threshold takes the list-reduction codegen.
        c = Circuit()
        inputs = [c.variable(f"x{i}") for i in range(40)]
        c.set_output(c.and_gate(inputs))
        compiled = compile_circuit(c)
        space = EventSpace({f"x{i}": 0.9 for i in range(40)})
        assert math.isclose(compiled.probability(space), 0.9**40)
        assert compiled.evaluate({f"x{i}": True for i in range(40)})
        assert not compiled.evaluate(
            {f"x{i}": i != 7 for i in range(40)}
        )

    def test_enumeration_reusable_buffer_correct(self):
        # The mask loop reuses one slot array; totals must still be exact.
        c = Circuit()
        a, b = c.variable("a"), c.variable("b")
        c.set_output(
            c.or_gate([c.and_gate([a, c.negation(b)]), c.and_gate([c.negation(a), b])])
        )
        space = EventSpace({"a": 0.3, "b": 0.7})
        expected = 0.3 * 0.3 + 0.7 * 0.7
        assert math.isclose(compile_circuit(c).probability_enumerate(space), expected)


class TestEngineRegistry:
    def test_builtin_engines_registered(self):
        assert {"dd", "enumerate", "message_passing", "shannon"} <= set(
            available_engines()
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ReproError, match="unknown evaluation engine"):
            get_engine("does-not-exist")

    def test_custom_engine_roundtrip(self):
        # The autouse conftest fixture restores the registry afterwards.
        register_engine("always_half", lambda compiled, space, **kw: 0.5)
        c = Circuit()
        c.set_output(c.variable("x"))
        assert probability(c, EventSpace({"x": 0.9}), engine="always_half") == 0.5

    def test_forced_engine_overrides_every_dispatch(self):
        # The CLI --engine knob: forcing must reach even consumers that pin
        # an engine explicitly (tid_probability pins "dd").
        from repro.baselines import tid_probability_enumerate
        from repro.circuits import forced_engine
        from repro.core import tid_probability
        from repro.instances import TIDInstance, fact
        from repro.queries import atom, cq, variables

        x, y = variables("x", "y")
        query = cq(atom("R", x), atom("S", x, y), atom("T", y))
        tid = TIDInstance(
            {fact("R", 1): 0.6, fact("S", 1, 2): 0.5, fact("T", 2): 0.8}
        )
        expected = tid_probability_enumerate(query, tid)
        register_engine("sentinel", lambda compiled, space, **kw: -1.0)
        with engine_forced("sentinel"):
            assert forced_engine() == "sentinel"
            assert tid_probability(query, tid) == -1.0
            with engine_forced("shannon"):
                assert math.isclose(
                    tid_probability(query, tid), expected, abs_tol=1e-9
                )
            assert forced_engine() == "sentinel"  # nesting restores
        assert forced_engine() is None
        assert math.isclose(tid_probability(query, tid), expected, abs_tol=1e-9)

    def test_engine_forced_restores_on_error(self):
        from repro.circuits import forced_engine

        with pytest.raises(RuntimeError, match="boom"):
            with engine_forced("shannon"):
                assert forced_engine() == "shannon"
                raise RuntimeError("boom")
        assert forced_engine() is None

    def test_default_engine_setting(self):
        before = default_engine()
        with default_engine_set("shannon"):
            assert default_engine() == "shannon"
            with pytest.raises(ReproError, match="unknown evaluation engine"):
                set_default_engine("nope")
        assert default_engine() == before


class TestStructuralCaches:
    def test_decomposition_cached_per_heuristic(self):
        compiled = compile_circuit(random_circuit(5))
        assert compiled.decomposition("min_fill") is compiled.decomposition("min_fill")

    def test_binarized_cached_and_binary(self):
        c = Circuit()
        c.set_output(c.and_gate([c.variable(f"x{i}") for i in range(7)]))
        compiled = compile_circuit(c)
        binc = compiled.binarized()
        assert binc is compiled.binarized()
        assert all(
            binc.offsets[p + 1] - binc.offsets[p] <= 2 for p in range(binc.size)
        )

    def test_external_decomposition_over_binarized_ids(self):
        # Callers build decompositions over circuit.binarized() gate ids
        # (densely renumbered); an unreachable gate in the source arena must
        # not shift the translation to compiled positions.
        from repro.circuits import moral_graph, wmc_message_passing
        from repro.treewidth import decompose

        c = Circuit()
        x = c.variable("x")
        c.variable("dead")  # unreachable: original ids diverge from binarized
        y = c.variable("y")
        c.set_output(c.and_gate([x, y]))
        decomposition = decompose(moral_graph(c.binarized()), "min_fill")
        space = EventSpace({"x": 0.5, "dead": 0.5, "y": 0.5})
        result = wmc_message_passing(c, space, decomposition=decomposition)
        assert math.isclose(result, 0.25)


class TestCompiledConsumers:
    def test_lineage_compiled_is_cached(self):
        x, y = variables("x", "y")
        query = cq(atom("R", x), atom("S", x, y), atom("T", y))
        tid = random_chain_tid(0)
        lineage = build_lineage(tid.instance, query)
        assert lineage.compiled() is lineage.compiled()
        assert isinstance(lineage.compiled(), CompiledCircuit)

    def test_monte_carlo_lineage_batch_close_to_exact(self):
        from repro.baselines import monte_carlo_probability, tid_probability_enumerate

        x, y = variables("x", "y")
        query = cq(atom("R", x), atom("S", x, y), atom("T", y))
        tid = random_chain_tid(1, length=3)
        exact = tid_probability_enumerate(query, tid)
        batched = monte_carlo_probability(query, tid, samples=4000, seed=0)
        legacy = monte_carlo_probability(
            query, tid, samples=4000, seed=0, method="worlds"
        )
        assert abs(batched - exact) < 0.05
        assert abs(legacy - exact) < 0.05
