"""Monte-Carlo baselines: naive sampling and Karp–Luby DNF estimation.

The paper positions sampling as what practice falls back to when exact
evaluation is #P-hard ("makes it necessary in practice to approximate query
results via sampling"), and as the partner of the exact method in the
partial-decomposition hybrid (E12).

Execution model — three tiers, picked automatically per install:

- **numpy + workers**: both estimators run the *fused sample+evaluate*
  shards of :mod:`repro.circuits.parallel` — the sample range is cut into
  fixed :data:`~repro.circuits.parallel.MC_SHARD`-sized shards, each shard
  draws its own worlds from ``default_rng((seed, shard_index))`` inside a
  worker process, evaluates them through the compiled circuit's
  level-scheduled batch kernels (Monte Carlo) or one containment matrix
  product (Karp–Luby), and returns a single hit count. The full world
  matrix never exists in any process.
- **numpy, serial**: the same shards run in-process. Because the shard
  decomposition and seeding are independent of the worker count, a fixed
  seed gives *bit-identical* estimates at 0, 1, 2 or 8 workers.
- **no numpy**: the scalar per-sample loops run instead, with identical
  estimator semantics (different random streams, same guarantees).

``workers=None`` defers to the process-wide knob
(:func:`repro.circuits.parallel.parallel_workers`, settable via
``REPRO_PARALLEL_WORKERS`` or the CLI ``--workers`` flag). Layered above
the pool, ``hosts=`` routes the same shards to remote workers over TCP
(:mod:`repro.circuits.distributed`); ``hosts=None`` defers to the
process-wide :func:`repro.circuits.distributed.distributed_hosts` knob
(``REPRO_DISTRIBUTED_HOSTS`` / CLI ``--hosts``), and because the shard
decomposition and seeding never change, a fixed seed estimates to the
same value in-process, on the pool, and across hosts.
"""

from __future__ import annotations

import math

from repro.circuits.compiled import numpy_module
from repro.instances.base import Fact, Instance
from repro.instances.tid import TIDInstance
from repro.util import check, stable_rng

#: Cap on sampled worlds held in memory at once by the scalar-era vectorized
#: paths; kept for backward compatibility — the fused paths shard by
#: :data:`repro.circuits.parallel.MC_SHARD` instead.
SAMPLE_CHUNK = 1 << 14


def monte_carlo_probability(
    query,
    tid: TIDInstance,
    samples: int,
    seed: int = 0,
    method: str = "lineage",
    workers: int | None = None,
    hosts=None,
) -> float:
    """Estimate P(query) by sampling worlds and evaluating the query.

    The standard unbiased estimator; its additive error scales as
    ``O(1/sqrt(samples))`` regardless of instance structure.

    With ``method="lineage"`` (the default) the query's lineage circuit is
    built and compiled *once* and the sampled worlds are evaluated in bulk
    over the flat IR — with numpy, through the fused sample+evaluate shards
    of :func:`repro.circuits.parallel.monte_carlo_hits` (on ``workers``
    processes when >= 2, in-process otherwise, bit-identical either way) —
    or, when ``hosts`` (or the process-wide ``distributed_hosts`` knob)
    names remote workers, the same shards stream over TCP through
    :func:`repro.circuits.distributed.monte_carlo_hits`, still
    bit-identical; without numpy, one generated-kernel call per world.
    ``method="worlds"`` keeps the original per-world ``query.holds_in``
    evaluation (works for any query object, including those without
    lineage support).
    """
    check(samples > 0, "need at least one sample")
    if method == "worlds":
        draw = tid.world_sampler(seed)
        hits = 0
        for _ in range(samples):
            if query.holds_in(draw()):
                hits += 1
        return hits / samples
    check(method == "lineage", f"unknown sampling method {method!r}")
    from repro.core.engine import build_lineage

    compiled = build_lineage(tid.instance, query).compiled()
    space = tid.event_space()
    marginals = [space.probability(name) for name in compiled.variables()]
    if numpy_module() is not None:
        from repro.circuits import distributed

        hits = distributed.monte_carlo_hits(
            compiled, marginals, samples, seed=seed, hosts=hosts, workers=workers
        )
        return hits / samples
    rng = stable_rng(seed)
    row = [0] * len(marginals)

    def worlds():
        for _ in range(samples):
            for i, p in enumerate(marginals):
                row[i] = rng.random() < p
            yield row

    return sum(compiled.evaluate_batch(worlds())) / samples


def required_samples(epsilon: float, delta: float) -> int:
    """Hoeffding bound: samples for additive error ``epsilon`` w.p. 1-delta."""
    check(0 < epsilon < 1 and 0 < delta < 1, "epsilon and delta must be in (0,1)")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def karp_luby_probability(
    query,
    tid: TIDInstance,
    samples: int,
    seed: int = 0,
    workers: int | None = None,
    hosts=None,
) -> float:
    """Karp–Luby estimator for the probability of the query's DNF lineage.

    Computes the lineage as a monotone DNF (one conjunct per homomorphism
    witness), then estimates the probability of the union by importance
    sampling over the witnesses. Unlike naive Monte Carlo, the relative error
    is bounded even for tiny probabilities — the classic FPRAS for DNF.

    A sample counts iff its drawn witness is the *first* witness fully
    contained in the sampled world. With numpy the trials run as the fused
    shards of :func:`repro.circuits.parallel.karp_luby_hits` — witness
    picks, conditioned worlds and the containment matrix product all happen
    inside the shard (a worker process when ``workers >= 2``, a remote host
    when ``hosts`` names one), and a fixed seed gives identical estimates
    at any worker or host count.
    """
    check(samples > 0, "need at least one sample")
    witnesses = _dnf_witnesses(query, tid)
    if not witnesses:
        return 0.0
    weights = []
    for witness in witnesses:
        weight = 1.0
        for f in witness:
            weight *= tid.probability(f)
        weights.append(weight)
    total_weight = sum(weights)
    if total_weight == 0.0:
        return 0.0

    facts = list(tid.facts())
    np = numpy_module()
    if np is not None:
        from repro.circuits import distributed

        fact_index = {f: i for i, f in enumerate(facts)}
        probs = np.asarray([tid.probability(f) for f in facts], dtype=np.float64)
        membership = np.zeros((len(witnesses), len(facts)), dtype=np.int32)
        for w, witness in enumerate(witnesses):
            for f in witness:
                membership[w, fact_index[f]] = 1
        hits = distributed.karp_luby_hits(
            membership, probs, weights, samples, seed=seed, hosts=hosts,
            workers=workers,
        )
    else:
        hits = _karp_luby_hits_scalar(
            witnesses, weights, total_weight, facts, tid, samples, seed
        )
    return total_weight * hits / samples


def _karp_luby_hits_scalar(
    witnesses, weights, total_weight, facts, tid, samples: int, seed: int
) -> int:
    """The per-sample loop of the Karp–Luby trial (numpy-free fallback)."""
    rng = stable_rng(seed)
    probabilities = {f: tid.probability(f) for f in facts}
    hits = 0
    for _ in range(samples):
        # Pick a witness with probability proportional to its weight.
        target = rng.random() * total_weight
        cumulative = 0.0
        chosen = len(witnesses) - 1
        for index, weight in enumerate(weights):
            cumulative += weight
            if target <= cumulative:
                chosen = index
                break
        witness = witnesses[chosen]
        # Sample the remaining facts conditioned on the witness being present.
        world = set(witness)
        for f in facts:
            if f not in world and rng.random() < probabilities[f]:
                world.add(f)
        # Count only if ``chosen`` is the first witness fully contained.
        for index, other in enumerate(witnesses):
            if all(f in world for f in other):
                if index == chosen:
                    hits += 1
                break
    return hits


def _dnf_witnesses(query, tid: TIDInstance) -> list[frozenset[Fact]]:
    """Distinct fact-set conjuncts of the query lineage over the instance."""
    all_facts = Instance(tid.facts())
    seen: dict[frozenset[Fact], None] = {}
    for witness in query.witnesses(all_facts):
        seen.setdefault(frozenset(witness), None)
    return list(seen)
