"""The paper's Table 1: the conference-trips c-instance, verbatim.

A researcher books flights depending on which conferences they attend: PODS
in Melbourne, STOC in Portland. Each trip fact is annotated with a formula
over the events ``pods`` and ``stoc``.
"""

from __future__ import annotations

from repro.events import var
from repro.instances.base import fact
from repro.instances.cinstance import CInstance, PCInstance

PODS = "pods"
STOC = "stoc"

TRIP_CDG_MEL = fact("Trip", "Paris CDG", "Melbourne MEL")
TRIP_MEL_CDG = fact("Trip", "Melbourne MEL", "Paris CDG")
TRIP_MEL_PDX = fact("Trip", "Melbourne MEL", "Portland PDX")
TRIP_CDG_PDX = fact("Trip", "Paris CDG", "Portland PDX")
TRIP_PDX_CDG = fact("Trip", "Portland PDX", "Paris CDG")

ALL_TRIPS = (TRIP_CDG_MEL, TRIP_MEL_CDG, TRIP_MEL_PDX, TRIP_CDG_PDX, TRIP_PDX_CDG)


def table1_cinstance(backend: str | None = None) -> CInstance:
    """The exact c-instance of the paper's Table 1."""
    pods, stoc = var(PODS), var(STOC)
    ci = CInstance(backend=backend)
    ci.add(TRIP_CDG_MEL, pods)
    ci.add(TRIP_MEL_CDG, pods & ~stoc)
    ci.add(TRIP_MEL_PDX, pods & stoc)
    ci.add(TRIP_CDG_PDX, ~pods & stoc)
    ci.add(TRIP_PDX_CDG, stoc)
    return ci


def table1_pc_instance(
    p_pods: float = 0.7, p_stoc: float = 0.5, backend: str | None = None
) -> PCInstance:
    """Table 1 as a pc-instance with attendance probabilities."""
    pc = PCInstance(table1_cinstance(backend))
    pc.add_event(PODS, p_pods)
    pc.add_event(STOC, p_stoc)
    return pc
