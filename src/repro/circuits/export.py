"""Circuit inspection: statistics and Graphviz export.

Debugging aids for the lineage pipeline: a size/shape summary (gate counts
per kind, depth, fan-in) and a ``dot`` rendering for small circuits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import AND, CONST, NOT, OR, VAR, Circuit
from repro.util import check


@dataclass(frozen=True)
class CircuitStats:
    """Shape summary of the gates reachable from a circuit's output."""

    total: int
    variables: int
    and_gates: int
    or_gates: int
    not_gates: int
    constants: int
    depth: int
    max_fan_in: int

    def __str__(self) -> str:
        return (
            f"{self.total} gates (var={self.variables}, and={self.and_gates},"
            f" or={self.or_gates}, not={self.not_gates}, const={self.constants});"
            f" depth={self.depth}, max fan-in={self.max_fan_in}"
        )


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute a :class:`CircuitStats` for the output cone of ``circuit``."""
    check(circuit.output is not None, "circuit has no output gate")
    reachable = circuit.reachable_from_output()
    counts = {VAR: 0, AND: 0, OR: 0, NOT: 0, CONST: 0}
    depth: dict[int, int] = {}
    max_fan_in = 0
    for gid in reachable:
        gate = circuit.gate(gid)
        counts[gate.kind] += 1
        max_fan_in = max(max_fan_in, len(gate.inputs))
        depth[gid] = 1 + max((depth[i] for i in gate.inputs), default=0)
    return CircuitStats(
        total=len(reachable),
        variables=counts[VAR],
        and_gates=counts[AND],
        or_gates=counts[OR],
        not_gates=counts[NOT],
        constants=counts[CONST],
        depth=max(depth.values(), default=0),
        max_fan_in=max_fan_in,
    )


_SHAPES = {VAR: "ellipse", CONST: "plaintext", AND: "box", OR: "diamond", NOT: "invtriangle"}


def to_dot(circuit: Circuit, name: str = "circuit", max_gates: int = 500) -> str:
    """Render the output cone as a Graphviz ``dot`` string.

    Refuses circuits larger than ``max_gates`` — dot output beyond that is
    unreadable anyway.
    """
    check(circuit.output is not None, "circuit has no output gate")
    reachable = circuit.reachable_from_output()
    check(
        len(reachable) <= max_gates,
        f"circuit has {len(reachable)} gates; raise max_gates to export anyway",
    )
    lines = [f"digraph {name} {{", "  rankdir=BT;"]
    for gid in reachable:
        gate = circuit.gate(gid)
        if gate.kind == VAR:
            label = str(gate.payload)
        elif gate.kind == CONST:
            label = "1" if gate.payload else "0"
        else:
            label = {AND: "∧", OR: "∨", NOT: "¬"}[gate.kind]
        shape = _SHAPES[gate.kind]
        peripheries = 2 if gid == circuit.output else 1
        escaped = label.replace('"', '\\"')
        lines.append(
            f'  g{gid} [label="{escaped}", shape={shape}, peripheries={peripheries}];'
        )
        for child in gate.inputs:
            lines.append(f"  g{child} -> g{gid};")
    lines.append("}")
    return "\n".join(lines)
