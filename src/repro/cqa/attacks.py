"""Koutris–Wijsen attack graphs and the CERTAINTY(q) trichotomy.

For a self-join-free Boolean conjunctive query ``q`` under primary keys,
the complexity of *certain query answering* over key-violating databases
("is q true in **every** repair?") is decided by the **attack graph** of
``q`` (Koutris & Wijsen, PODS 2015 / TODS 2017):

- acyclic attack graph        → CERTAINTY(q) is **FO-rewritable**;
- cycles, but none *strong*   → CERTAINTY(q) is in **PTIME** (not FO);
- some strong cycle           → CERTAINTY(q) is **coNP-complete**.

The attack graph has the query's atoms as vertices.  Write ``key(F)`` for
the variables in key positions of atom ``F`` and ``vars(F)`` for all its
variables (constants are ignored — they are "known").  Each atom ``G``
contributes the functional dependency ``key(G) → vars(G)``; let
``F^{+,q}`` be the closure of ``key(F)`` under the FDs of all atoms
*except* ``F``.  Then ``F`` **attacks** ``G`` (``F ≠ G``) when some
sequence of atoms ``F = F₀, …, Fₙ = G`` exists in which consecutive atoms
share a variable outside ``F^{+,q}``.

An attack ``F → G`` is **weak** when the FDs of *all* atoms (now
including ``F``) imply ``key(F) → key(G)``; otherwise it is **strong**.
A cycle of the attack graph is strong when it contains a strong attack.
This module exposes the graph itself (:func:`attack_graph`) and the
resulting classification (:func:`classify`).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.queries.cq import Atom, ConjunctiveQuery, Variable
from repro.queries.keys import KeySpec
from repro.util import check

__all__ = [
    "FO",
    "PTIME",
    "CONP",
    "Attack",
    "Classification",
    "attack_graph",
    "classify",
    "substitute_atom",
]

#: The three trichotomy classes, in increasing order of hardness.
FO = "fo"
PTIME = "ptime"
CONP = "conp"


@dataclass(frozen=True)
class Attack:
    """A directed attack between two atoms, by index into the query."""

    source: int
    target: int
    weak: bool


@dataclass(frozen=True)
class Classification:
    """The trichotomy verdict for one query.

    ``trichotomy`` is one of :data:`FO` / :data:`PTIME` / :data:`CONP`;
    ``attacks`` is the full attack graph; ``witness_cycle`` names one
    cycle certifying the verdict (``None`` for the acyclic class), as a
    tuple of atom indices with a strong cycle preferred when one exists.
    """

    trichotomy: str
    attacks: tuple[Attack, ...]
    witness_cycle: tuple[int, ...] | None

    def describe(self, query: ConjunctiveQuery) -> str:
        """Human-readable one-paragraph summary (used by ``repro cqa``)."""
        atoms = query.atoms
        lines = [f"class: {self.trichotomy}"]
        for a in self.attacks:
            kind = "weak" if a.weak else "strong"
            lines.append(f"  {atoms[a.source]} --{kind}--> {atoms[a.target]}")
        if self.witness_cycle is not None:
            shown = " -> ".join(str(atoms[i]) for i in self.witness_cycle)
            lines.append(f"  cycle: {shown}")
        return "\n".join(lines)


def substitute_atom(atom: Atom, binding: dict[Variable, object]) -> Atom:
    """Replace bound variables of ``atom`` by their values (a ground step).

    The rewriting engine calls this as it eliminates atoms: variables
    fixed by earlier atoms become constants, which the attack-graph and
    matching machinery then treat as known — exactly the theory's "bound
    variables act as constants" convention.
    """
    return Atom(
        atom.relation,
        tuple(binding.get(t, t) if isinstance(t, Variable) else t for t in atom.terms),
    )


def _variables(terms: Iterable) -> frozenset[Variable]:
    return frozenset(t for t in terms if isinstance(t, Variable))


def _key_terms(atom: Atom, keys: KeySpec) -> tuple:
    positions = keys.positions_for(atom.relation, len(atom.terms))
    return tuple(atom.terms[p] for p in positions)


def _closure(seed: frozenset[Variable], fds: Sequence[tuple[frozenset, frozenset]]) -> frozenset[Variable]:
    """Closure of a variable set under functional dependencies lhs → rhs."""
    closed = set(seed)
    changed = True
    while changed:
        changed = False
        for lhs, rhs in fds:
            if lhs <= closed and not rhs <= closed:
                closed |= rhs
                changed = True
    return frozenset(closed)


def attack_graph(atoms: Sequence[Atom], keys: KeySpec) -> tuple[Attack, ...]:
    """The attack graph of a sequence of atoms under ``keys``.

    Works on a bare atom sequence (not a query) because the FO engine
    recomputes residual attack graphs mid-rewriting, after substituting
    bindings into atoms.  Constants never occur in the variable sets, so
    substituted (ground) positions drop out exactly as the theory's
    "bound variables become constants" step prescribes.
    """
    n = len(atoms)
    key_vars = [_variables(_key_terms(a, keys)) for a in atoms]
    all_vars = [a.variables() for a in atoms]
    fds = [(key_vars[i], all_vars[i]) for i in range(n)]

    attacks: list[Attack] = []
    for i in range(n):
        plus = _closure(key_vars[i], [fds[j] for j in range(n) if j != i])
        outside = all_vars[i] - plus
        # BFS over atoms through shared variables outside F^{+,q}.
        frontier_vars = set(outside)
        reached: set[int] = set()
        changed = True
        while changed:
            changed = False
            for j in range(n):
                if j == i or j in reached:
                    continue
                if all_vars[j] & frontier_vars:
                    reached.add(j)
                    frontier_vars |= all_vars[j] - plus
                    changed = True
        if reached:
            full_closure = _closure(key_vars[i], fds)
            for j in sorted(reached):
                attacks.append(Attack(i, j, weak=key_vars[j] <= full_closure))
    return tuple(attacks)


def _strongly_connected(n: int, edges: dict[int, set[int]]) -> list[list[int]]:
    """Tarjan SCCs over vertices 0..n-1, iterative (queries are tiny but
    recursion limits are not worth risking)."""
    index_of: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = [0]

    for root in range(n):
        if root in index_of:
            continue
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index_of:
                    index_of[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(edges.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index_of[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index_of[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == v:
                        break
                sccs.append(component)
    return sccs


def _reachable(start: int, edges: dict[int, set[int]]) -> set[int]:
    seen = {start}
    frontier = [start]
    while frontier:
        v = frontier.pop()
        for w in edges.get(v, ()):
            if w not in seen:
                seen.add(w)
                frontier.append(w)
    return seen


def classify(query: ConjunctiveQuery, keys: KeySpec) -> Classification:
    """Place a self-join-free CQ in its CERTAINTY(q) trichotomy class.

    Raises :class:`repro.util.ReproError` on queries with self-joins —
    the trichotomy (and this whole engine) is only established for the
    self-join-free fragment.
    """
    check(
        query.is_self_join_free(),
        "CQA classification requires a self-join-free query",
    )
    atoms = query.atoms
    attacks = attack_graph(atoms, keys)
    edges: dict[int, set[int]] = {}
    for a in attacks:
        edges.setdefault(a.source, set()).add(a.target)

    sccs = _strongly_connected(len(atoms), edges)
    cyclic = [c for c in sccs if len(c) > 1]
    if not cyclic:
        return Classification(FO, attacks, None)

    # A strong attack u → v inside a cycle (v reaches back to u) makes the
    # cycle — and hence the query — coNP-complete.
    for a in attacks:
        if not a.weak and a.source in _reachable(a.target, edges):
            return Classification(CONP, attacks, (a.source, a.target))
    witness = tuple(sorted(cyclic[0]))
    return Classification(PTIME, attacks, witness)
