"""Series-parallel posets: recognition and polynomial extension counting.

Counting linear extensions is #P-complete in general but polynomial on
series-parallel posets — the class generated from singletons by series
(concat) and parallel (union) composition, i.e. by the po-relation algebra
without products. The paper points to such "specific structures of partial
orders" as the tractable cases; experiment E8 measures the gap.

Recognition is by recursive decomposition: a poset splits in *parallel* when
its comparability graph is disconnected, and in *series* when its elements
partition into consecutive layers (every element of one part below every
element of the next). Posets admitting neither split (and size > 1) contain
an N-shape and are not series-parallel.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.order.posets import LabeledPoset
from repro.util import ReproError


class NotSeriesParallel(ReproError):
    """Raised when a poset is not series-parallel."""


def _comparability_components(poset: LabeledPoset) -> list[set]:
    graph = nx.Graph()
    graph.add_nodes_from(poset.elements())
    for a, b in poset.closure_pairs():
        graph.add_edge(a, b)
    return [set(c) for c in nx.connected_components(graph)]


def _series_split(poset: LabeledPoset) -> tuple[set, set] | None:
    """Find a split (bottom, top) with bottom × top fully ordered, if any."""
    elements = poset.elements()
    closure = poset.closure_pairs()
    below_count = {e: 0 for e in elements}
    for a, b in closure:
        below_count[b] += 1
    # Try splits along the "level" structure: candidates are sets closed
    # downward. A valid series split must be a downset D such that every
    # element of D is below every element outside D.
    order_by_rank = sorted(elements, key=lambda e: (below_count[e], str(e)))
    for size in range(1, len(elements)):
        bottom = set(order_by_rank[:size])
        top = set(order_by_rank[size:])
        if all((a, b) in closure for a in bottom for b in top):
            return bottom, top
    return None


def is_series_parallel(poset: LabeledPoset) -> bool:
    """Whether the poset is series-parallel (N-free)."""
    try:
        count_linear_extensions_sp(poset)
    except NotSeriesParallel:
        return False
    return True


def count_linear_extensions_sp(poset: LabeledPoset) -> int:
    """Count linear extensions of a series-parallel poset in polynomial time.

    Parallel composition of posets with ``m`` and ``n`` elements multiplies
    the counts by the binomial interleaving factor ``C(m+n, m)``; series
    composition multiplies the counts directly.

    Raises :class:`NotSeriesParallel` when the poset is not series-parallel.
    """
    n = len(poset)
    if n <= 1:
        return 1
    components = _comparability_components(poset)
    if len(components) > 1:
        total = 1
        placed = 0
        for component in components:
            sub = poset.restricted_to(component)
            total *= count_linear_extensions_sp(sub)
            total *= math.comb(placed + len(component), len(component))
            placed += len(component)
        return total
    split = _series_split(poset)
    if split is not None:
        bottom, top = split
        return count_linear_extensions_sp(
            poset.restricted_to(bottom)
        ) * count_linear_extensions_sp(poset.restricted_to(top))
    raise NotSeriesParallel(
        f"poset with {n} elements is connected with no series split (contains an N)"
    )
