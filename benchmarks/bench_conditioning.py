"""E9 — conditioning: the easy literal case, the harder fact case, crowds.

Section 4's gradient, measured on Table 1 and larger pc-instances:

- conditioning on an *event literal* is structure-preserving (annotations
  shrink) and cheap;
- conditioning on a *fact* or a *query answer* requires WMC ratios — still
  tractable here because the instances stay tree-like;
- the crowd loop: greedy value-of-information question selection reduces the
  query entropy at least as fast as random questions.

Run the table:  python benchmarks/bench_conditioning.py
Benchmarks:     pytest benchmarks/bench_conditioning.py --benchmark-only
"""

import time

import pytest

from repro.conditioning import (
    ConditionedInstance,
    SimulatedCrowd,
    run_crowd_session,
)
from repro.events import var
from repro.instances import PCInstance, fact, pcc_from_pc
from repro.queries import atom, cq, variables
from repro.workloads import TRIP_MEL_PDX, table1_pc_instance

X, Y = variables("x", "y")


def sources_pcc(n: int):
    """n facts guarded by per-position source events along a chain."""
    pc = PCInstance()
    for i in range(n):
        pc.add_event(f"s{i}", 0.7)
    for i in range(n):
        guard = var(f"s{i}") if i == 0 else var(f"s{i}") & var(f"s{i-1}")
        pc.add(fact("Claim", i), guard)
    return pcc_from_pc(pc)


def test_literal_conditioning(benchmark):
    pcc = pcc_from_pc(table1_pc_instance(0.7, 0.5))

    def condition():
        conditioned = ConditionedInstance(pcc).observe_event("pods", True)
        return conditioned.fact_probability(TRIP_MEL_PDX)

    assert abs(benchmark(condition) - 0.5) < 1e-9


def test_fact_conditioning(benchmark):
    pcc = pcc_from_pc(table1_pc_instance(0.7, 0.5))

    def condition():
        conditioned = ConditionedInstance(pcc).observe_fact(TRIP_MEL_PDX, True)
        return conditioned.evidence_probability()

    assert abs(benchmark(condition) - 0.35) < 1e-9


def test_query_conditioning(benchmark):
    pcc = pcc_from_pc(table1_pc_instance(0.7, 0.5))
    observed = cq(atom("Trip", "Melbourne MEL", Y))
    target = cq(atom("Trip", "Paris CDG", Y))

    def condition():
        conditioned = ConditionedInstance(pcc).observe_query(observed, holds=True)
        return conditioned.query_probability(target)

    p = benchmark(condition)
    assert 0.0 <= p <= 1.0


@pytest.mark.parametrize("n", [6, 12])
def test_conditioning_scales_on_chain(benchmark, n):
    pcc = sources_pcc(n)

    def condition():
        conditioned = ConditionedInstance(pcc).observe_fact(fact("Claim", n - 1), True)
        return conditioned.fact_probability(fact("Claim", 0))

    p = benchmark(condition)
    assert 0.0 <= p <= 1.0


def test_crowd_greedy_policy(benchmark):
    pcc = pcc_from_pc(table1_pc_instance(0.7, 0.5))
    query = cq(atom("Trip", "Paris CDG", "Melbourne MEL"))

    def session():
        crowd = SimulatedCrowd({"pods": True, "stoc": False}, error_rate=0.0, seed=0)
        return run_crowd_session(pcc, query, crowd, budget=2, policy="greedy")

    result = benchmark(session)
    assert result.entropies()[-1] <= result.entropies()[0]


def main() -> None:
    print("E9 — conditioning")
    pcc = pcc_from_pc(table1_pc_instance(0.7, 0.5))
    print("\nconditioning cost by observation type (Table 1 instance):")
    for name, run in (
        ("event literal (pods=true)",
         lambda: ConditionedInstance(pcc).observe_event("pods", True)
         .fact_probability(TRIP_MEL_PDX)),
        ("fact present (MEL→PDX)",
         lambda: ConditionedInstance(pcc).observe_fact(TRIP_MEL_PDX, True)
         .evidence_probability()),
        ("query answer (∃ flight out of MEL)",
         lambda: ConditionedInstance(pcc)
         .observe_query(cq(atom("Trip", "Melbourne MEL", Y)), holds=True)
         .evidence_probability()),
    ):
        start = time.perf_counter()
        value = run()
        print(f"  {name:<38} -> {value:.3f}  in {time.perf_counter() - start:.4f}s")

    print("\nconditioning on growing chain-correlated instances:")
    print(f"{'n facts':>8} {'fact-conditioning time (s)':>28}")
    for n in [6, 12, 24]:
        pcc_n = sources_pcc(n)
        start = time.perf_counter()
        conditioned = ConditionedInstance(pcc_n).observe_fact(fact("Claim", n - 1), True)
        conditioned.fact_probability(fact("Claim", 0))
        print(f"{n:>8} {time.perf_counter() - start:>28.3f}")

    print("\ncrowd loop: entropy after k questions (mean over 10 crowd seeds):")
    query = cq(atom("Trip", "Paris CDG", "Melbourne MEL"))
    print(f"{'policy':<8} {'H0':>6} {'H1':>6} {'H2':>6}")
    for policy in ("greedy", "random"):
        trajectories = []
        for seed in range(10):
            crowd = SimulatedCrowd({"pods": True, "stoc": False}, error_rate=0.1, seed=seed)
            session = run_crowd_session(
                pcc, query, crowd, budget=2, policy=policy, seed=seed
            )
            entropies = session.entropies()
            while len(entropies) < 3:
                entropies.append(entropies[-1])
            trajectories.append(entropies[:3])
        means = [sum(t[i] for t in trajectories) / len(trajectories) for i in range(3)]
        print(f"{policy:<8} {means[0]:>6.3f} {means[1]:>6.3f} {means[2]:>6.3f}")
    print("\nshape check: greedy drops entropy at least as fast as random;"
          " literal conditioning is the cheapest observation type.")


if __name__ == "__main__":
    main()
