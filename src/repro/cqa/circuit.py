"""Lower "q holds in a uniformly random repair" to a provenance circuit.

The coNP-complete trichotomy class is exactly what the compiled circuit
pipeline exists for: deciding certainty is hard, so we *encode* it and
let the weighted-model-counting engines do the work.

Per block ``f₁ … f_k`` we introduce a chain of independent Booleans
``c₁ … c_{k-1}`` with ``P(cᵢ) = 1/(k-i+1)`` and define::

    chosen(fᵢ) = ¬c₁ ∧ … ∧ ¬c_{i-1} ∧ cᵢ        (i < k)
    chosen(f_k) = ¬c₁ ∧ … ∧ ¬c_{k-1}

Every valuation of the chain variables selects exactly one fact per
block — i.e. *is* a repair — and each of the k facts comes out with
probability exactly 1/k, so the product distribution over all chain
variables is the uniform distribution over repairs.  The query lineage
is then the DNF over witnesses of the conjunction of their facts'
``chosen`` gates, and::

    q certain  ⇔  P(lineage) = 1  ⇔  no repair falsifies q.

The threshold is set *below* the probability mass of a single repair
(``1 - ½/#repairs``), so float round-off cannot flip the verdict as long
as ``#repairs`` stays within double precision — far beyond anything the
engines can count anyway.
"""

from __future__ import annotations

from repro.circuits import Circuit, probability
from repro.cqa.repairs import blocks, repair_count
from repro.events import EventSpace
from repro.instances.base import AbstractInstance
from repro.queries.cq import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.queries.keys import KeySpec
from repro.util import ReproError

__all__ = ["repair_lineage", "certain_by_circuit"]


def repair_lineage(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    instance: AbstractInstance,
    keys: KeySpec,
) -> tuple[Circuit, EventSpace]:
    """Build the uniform-repair lineage circuit for ``query``.

    Returns ``(circuit, space)`` whose output gate is true exactly on the
    valuations (= repairs) satisfying the query.  UCQs lower as the
    disjunction of their disjuncts' witness DNFs over one shared set of
    block-chain variables.
    """
    circuit = Circuit()
    space = EventSpace()
    chosen: dict = {}
    disjuncts = getattr(query, "disjuncts", None) or (query,)
    for relation in sorted({a.relation for q in disjuncts for a in q.atoms}):
        for b_idx, block in enumerate(blocks(instance, relation, keys)):
            k = len(block)
            if k == 1:
                chosen[block[0]] = circuit.true()
                continue
            negated_prefix: list[int] = []
            for i, f in enumerate(block):
                if i < k - 1:
                    name = f"cqa:{relation}:{b_idx}:{i}"
                    space.add(name, 1.0 / (k - i))
                    v = circuit.variable(name)
                    chosen[f] = circuit.and_gate([*negated_prefix, v]) if negated_prefix else v
                    negated_prefix.append(circuit.negation(v))
                else:
                    chosen[f] = (
                        negated_prefix[0]
                        if len(negated_prefix) == 1
                        else circuit.and_gate(negated_prefix)
                    )
    witness_gates = [
        circuit.and_gate([chosen[f] for f in witness])
        for q in disjuncts
        for witness in q.witnesses(instance)
    ]
    output = circuit.or_gate(witness_gates) if witness_gates else circuit.false()
    circuit.set_output(output)
    return circuit, space


def certain_by_circuit(
    query: ConjunctiveQuery | UnionOfConjunctiveQueries,
    instance: AbstractInstance,
    keys: KeySpec,
    engine: str | None = None,
) -> bool:
    """Decide certainty through the compiled circuit pipeline.

    ``engine=None`` uses the default engine and retries once with exact
    Shannon expansion if the structural engine rejects the circuit (e.g.
    a width cap); an explicit engine is never second-guessed.
    """
    circuit, space = repair_lineage(query, instance, keys)
    try:
        p = probability(circuit, space, engine=engine)
    except ReproError:
        if engine is not None:
            raise
        p = probability(circuit, space, engine="shannon")
    disjuncts = getattr(query, "disjuncts", None) or (query,)
    relations = tuple(sorted({a.relation for q in disjuncts for a in q.atoms}))
    count = repair_count(instance, keys, relations)
    threshold = 1.0 - 0.5 / count if count < 10**12 else 1.0 - 1e-12
    return p >= threshold
