"""Compiling tree-pattern queries to deterministic bottom-up tree automata.

The concrete instance of "one compiles the MSO query, in a data-independent
fashion, to a tree automaton which can read tree encodings" (paper §2.2):
a tree pattern becomes a *deterministic* bottom-up automaton over the
first-child/next-sibling binary encoding. The automaton state at an encoding
node summarizes the forest made of that node and its right siblings: the
pair ``(UA, UD)`` of pattern nodes matched exactly at a forest root /
matched anywhere in the forest — the same (A, D) logic as direct matching,
which is what makes the construction obviously correct.
"""

from __future__ import annotations

from repro.automata.bta import TreeAutomaton
from repro.automata.trees import BinaryTree, LEAF
from repro.prxml.patterns import TreePattern


class PatternAutomaton:
    """Deterministic bottom-up automaton for a tree pattern.

    Works on any alphabet (labels are read from the input tree), so it is
    implemented as a lazy deterministic automaton rather than an explicit
    transition table; :meth:`to_table` materializes the table for a finite
    alphabet, producing a standard :class:`TreeAutomaton`.
    """

    def __init__(self, pattern: TreePattern):
        self.pattern = pattern
        self._empty = (frozenset(), frozenset())

    def initial_state(self):
        """State at the ``#`` leaf: the empty forest."""
        return self._empty

    def step(self, symbol: str, left, right):
        """Deterministic transition at an internal encoding node.

        ``left`` summarizes the node's children forest, ``right`` the forest
        of its right siblings; the result summarizes the forest rooted here.
        """
        children_ua, children_ud = left
        siblings_ua, siblings_ud = right
        a, d = self.pattern.match_state_from_unions(symbol, children_ua, children_ud)
        return (a | siblings_ua, d | siblings_ud)

    def run(self, tree: BinaryTree):
        """The (unique) state reached at the root of ``tree``."""
        if tree.is_leaf():
            return self.initial_state()
        left = self.run(tree.left)  # type: ignore[arg-type]
        right = self.run(tree.right)  # type: ignore[arg-type]
        return self.step(tree.symbol, left, right)

    def accepts(self, tree: BinaryTree) -> bool:
        """Whether the pattern matches the encoded document."""
        _ua, ud = self.run(tree)
        return self.pattern.node_index(self.pattern.root) in ud

    def to_table(self, alphabet) -> TreeAutomaton:
        """Materialize an explicit :class:`TreeAutomaton` over ``alphabet``.

        Explores the reachable state space; state count is bounded by
        ``4^|pattern|`` but is tiny in practice.
        """
        alphabet = sorted(set(alphabet) - {LEAF})
        initial = self.initial_state()
        states = {initial}
        rules: dict[tuple, frozenset] = {}
        changed = True
        while changed:
            changed = False
            for symbol in alphabet:
                for left in list(states):
                    for right in list(states):
                        key = (symbol, left, right)
                        if key in rules:
                            continue
                        target = self.step(symbol, left, right)
                        rules[key] = frozenset({target})
                        if target not in states:
                            states.add(target)
                            changed = True
        root_index = self.pattern.node_index(self.pattern.root)
        finals = {s for s in states if root_index in s[1]}
        return TreeAutomaton({initial}, rules, finals)
