"""Tests for shared utilities."""

import pytest

from repro.util import ReproError, check, fresh_name_factory, pairs, powerset, stable_rng


class TestCheck:
    def test_passes_silently(self):
        check(True, "never raised")

    def test_raises_repro_error(self):
        with pytest.raises(ReproError, match="boom"):
            check(False, "boom")


class TestPowerset:
    def test_empty(self):
        assert list(powerset([])) == [()]

    def test_two_elements(self):
        assert list(powerset([1, 2])) == [(), (1,), (2,), (1, 2)]

    def test_size(self):
        assert len(list(powerset(range(5)))) == 32


class TestPairs:
    def test_pairs_of_three(self):
        assert list(pairs([1, 2, 3])) == [(1, 2), (1, 3), (2, 3)]

    def test_pairs_of_one(self):
        assert list(pairs([1])) == []


class TestStableRng:
    def test_same_seed_same_sequence(self):
        a = [stable_rng(7).random() for _ in range(5)]
        b = [stable_rng(7).random() for _ in range(5)]
        assert a == b

    def test_none_seed_is_deterministic(self):
        assert stable_rng(None).random() == stable_rng(None).random()

    def test_different_seeds_differ(self):
        assert stable_rng(1).random() != stable_rng(2).random()


class TestFreshNames:
    def test_sequence(self):
        fresh = fresh_name_factory("n")
        assert [fresh(), fresh(), fresh()] == ["n0", "n1", "n2"]

    def test_independent_factories(self):
        f1, f2 = fresh_name_factory("a"), fresh_name_factory("a")
        assert f1() == f2() == "a0"
