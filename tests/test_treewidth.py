"""Tests for tree decompositions, heuristics, exact treewidth, nice trees."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.treewidth import (
    HEURISTICS,
    TreeDecomposition,
    build_nice_tree,
    check_nice_tree,
    decompose,
    exact_decomposition,
    exact_treewidth,
    from_elimination_order,
    min_degree_order,
    min_fill_order,
)
from repro.util import ReproError


class TestTreeDecomposition:
    def test_width(self):
        td = TreeDecomposition({0: {"a", "b"}, 1: {"b", "c"}}, [(0, 1)])
        assert td.width() == 1

    def test_validate_accepts_valid(self):
        graph = nx.path_graph(3)
        td = TreeDecomposition({0: {0, 1}, 1: {1, 2}}, [(0, 1)])
        td.validate(graph)

    def test_validate_rejects_missing_vertex(self):
        graph = nx.path_graph(3)
        td = TreeDecomposition({0: {0, 1}}, [])
        with pytest.raises(ReproError, match="not covered"):
            td.validate(graph)

    def test_validate_rejects_missing_edge(self):
        graph = nx.path_graph(3)
        td = TreeDecomposition({0: {0, 1}, 1: {2}}, [(0, 1)])
        with pytest.raises(ReproError, match="edge"):
            td.validate(graph)

    def test_validate_rejects_disconnected_occurrence(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        graph.add_edges_from([(0, 1), (1, 2)])
        td = TreeDecomposition(
            {0: {0, 1}, 1: {1}, 2: {1, 2}}, [(0, 1), (1, 2)]
        )
        td.validate(graph)  # valid: vertex 1 occurrence is connected
        bad = TreeDecomposition({0: {0, 1}, 1: {2}, 2: {1, 2}}, [(0, 1), (1, 2)])
        with pytest.raises(ReproError, match="not connected"):
            bad.validate(graph)

    def test_non_tree_rejected(self):
        with pytest.raises(ReproError, match="tree"):
            TreeDecomposition(
                {0: {1}, 1: {1}, 2: {1}}, [(0, 1), (1, 2), (2, 0)]
            )

    def test_bag_containing_clique(self):
        graph = nx.complete_graph(4)
        td = decompose(graph)
        assert td.bag_containing(range(4)) is not None

    def test_relabeled_preserves_width(self):
        td = decompose(nx.cycle_graph(6))
        relabeled = td.relabeled()
        assert relabeled.width() == td.width()
        relabeled.validate(nx.cycle_graph(6))


class TestEliminationOrders:
    def test_path_orders_have_width_one(self):
        graph = nx.path_graph(10)
        assert from_elimination_order(graph, min_degree_order(graph)).width() == 1
        assert from_elimination_order(graph, min_fill_order(graph)).width() == 1

    def test_cycle_width_two(self):
        graph = nx.cycle_graph(8)
        assert from_elimination_order(graph, min_fill_order(graph)).width() == 2

    def test_invalid_order_rejected(self):
        graph = nx.path_graph(3)
        with pytest.raises(ReproError):
            from_elimination_order(graph, [0, 1])  # missing vertex 2

    def test_disconnected_graph_gives_tree(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        graph.add_node(4)
        td = decompose(graph)
        td.validate(graph)
        assert td.width() == 1


class TestHeuristics:
    @pytest.mark.parametrize("heuristic", HEURISTICS)
    def test_all_heuristics_produce_valid_decompositions(self, heuristic):
        graph = nx.random_regular_graph(3, 12, seed=1)
        td = decompose(graph, heuristic)
        td.validate(graph)

    def test_empty_graph(self):
        td = decompose(nx.Graph())
        assert td.width() <= 0

    def test_unknown_heuristic(self):
        with pytest.raises(ReproError, match="unknown heuristic"):
            decompose(nx.path_graph(3), "magic")


class TestExactTreewidth:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (nx.empty_graph(4), 0),
            (nx.path_graph(6), 1),
            (nx.cycle_graph(6), 2),
            (nx.complete_graph(5), 4),
            (nx.grid_2d_graph(3, 3), 3),
            (nx.star_graph(5), 1),
        ],
    )
    def test_known_treewidths(self, graph, expected):
        assert exact_treewidth(graph) == expected

    def test_exact_decomposition_achieves_optimum(self):
        graph = nx.cycle_graph(6)
        td = exact_decomposition(graph)
        td.validate(graph)
        assert td.width() == exact_treewidth(graph)

    def test_heuristics_never_beat_exact(self):
        for seed in range(5):
            graph = nx.gnp_random_graph(8, 0.4, seed=seed)
            exact = exact_treewidth(graph)
            for heuristic in ("min_degree", "min_fill"):
                assert decompose(graph, heuristic).width() >= exact

    def test_size_cap(self):
        with pytest.raises(ReproError, match="18 vertices"):
            exact_treewidth(nx.path_graph(25))


class TestNiceTree:
    def test_path_nice_tree_valid(self):
        graph = nx.path_graph(6)
        td = decompose(graph)
        nice = build_nice_tree(td)
        check_nice_tree(nice)
        assert nice.width() == td.width()

    def test_read_nodes_inserted(self):
        graph = nx.path_graph(4)
        td = decompose(graph)
        node = next(iter(td.bags))
        nice = build_nice_tree(td, {node: ["item1", "item2"]})
        check_nice_tree(nice)
        assert nice.count("read") == 2
        assert nice.items == ("item1", "item2")

    def test_join_nodes_for_branching(self):
        graph = nx.star_graph(4)
        td = decompose(graph)
        nice = build_nice_tree(td)
        check_nice_tree(nice)

    def test_root_bag_empty(self):
        td = decompose(nx.cycle_graph(5))
        nice = build_nice_tree(td)
        assert nice.root.bag == frozenset()

    def test_every_vertex_introduced_and_forgotten(self):
        graph = nx.cycle_graph(5)
        nice = build_nice_tree(decompose(graph))
        introduced = [n.vertex for n in nice.iter_postorder() if n.kind == "introduce"]
        forgotten = [n.vertex for n in nice.iter_postorder() if n.kind == "forget"]
        assert set(introduced) == set(graph.nodes)
        assert set(forgotten) == set(graph.nodes)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_heuristic_decompositions_always_valid(seed):
    import random

    rng = random.Random(seed)
    n = rng.randint(2, 12)
    graph = nx.gnp_random_graph(n, rng.uniform(0.1, 0.7), seed=seed)
    for heuristic in ("min_degree", "min_fill"):
        td = decompose(graph, heuristic)
        td.validate(graph)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_nice_tree_structurally_valid_on_random_graphs(seed):
    import random

    rng = random.Random(seed)
    n = rng.randint(2, 10)
    graph = nx.gnp_random_graph(n, 0.4, seed=seed)
    td = decompose(graph)
    nice = build_nice_tree(td)
    check_nice_tree(nice)
    assert nice.width() <= td.width()
