"""Graph views of circuits, used to measure and exploit circuit treewidth.

Theorem 2 of the paper conditions tractability on the treewidth of circuits
(jointly with the instance). The *moral graph* of a circuit connects every
gate to its inputs and the inputs of a gate pairwise, so that each gate's
consistency factor lives inside a clique — and hence inside a single bag of
any tree decomposition of the moral graph.
"""

from __future__ import annotations

import networkx as nx

from repro.circuits.circuit import Circuit


def moral_graph(circuit: Circuit, restrict_to_output: bool = True) -> nx.Graph:
    """Return the moral graph of ``circuit``.

    Vertices are gate ids; each gate is connected to all of its inputs, and
    the inputs of a gate are connected pairwise (moralization).
    """
    graph = nx.Graph()
    if restrict_to_output and circuit.output is not None:
        gate_ids = circuit.reachable_from_output()
    else:
        gate_ids = list(circuit.gate_ids())
    graph.add_nodes_from(gate_ids)
    for gid in gate_ids:
        inputs = circuit.gate(gid).inputs
        for child in inputs:
            graph.add_edge(gid, child)
        for i, a in enumerate(inputs):
            for b in inputs[i + 1 :]:
                graph.add_edge(a, b)
    return graph


def circuit_width(circuit: Circuit, heuristic: str = "min_fill") -> int:
    """Return the heuristic treewidth of the circuit's moral graph.

    The circuit is binarized first, since fan-in otherwise lower-bounds the
    width; this is the quantity the paper's Theorem 2 bounds.
    """
    from repro.treewidth import decompose

    binary = circuit.binarized()
    return decompose(moral_graph(binary), heuristic).width()
