"""Possibility and certainty of Boolean queries on uncertain instances.

The paper's three query-evaluation tasks are "possibility, certainty, or
probability". Probability subsumes the other two semantically, but
possibility/certainty admit cheaper direct computation on lineage circuits:

- for a **monotone** query, possibility holds iff the lineage is true when
  every positive-probability fact is present, and certainty iff it is true
  when only the certain (p = 1) facts are present;
- for arbitrary (non-monotone) automata queries, we evaluate the
  deterministic lineage's probability and compare against 0/1 — exact up to
  float arithmetic because d-D evaluation introduces no cancellation beyond
  products and disjoint sums.
"""

from __future__ import annotations

from repro.core.engine import build_lineage
from repro.instances.tid import TIDInstance
from repro.queries.cq import ConjunctiveQuery, UnionOfConjunctiveQueries

EPSILON = 1e-12


def is_monotone_query(query) -> bool:
    """Whether the query is syntactically monotone (CQ or UCQ)."""
    return isinstance(query, (ConjunctiveQuery, UnionOfConjunctiveQueries))


def possible(query, tid: TIDInstance) -> bool:
    """Does the query hold in some world of positive probability?"""
    if is_monotone_query(query):
        world = {
            f.variable_name: tid.probability(f) > 0.0 for f in tid.facts()
        }
        lineage = build_lineage(tid.instance, query)
        return lineage.compiled().evaluate(world)
    lineage = build_lineage(tid.instance, query)
    return lineage.probability_tid(tid) > EPSILON


def certain(query, tid: TIDInstance) -> bool:
    """Does the query hold in every world of positive probability?"""
    if is_monotone_query(query):
        world = {
            f.variable_name: tid.probability(f) >= 1.0 for f in tid.facts()
        }
        lineage = build_lineage(tid.instance, query)
        return lineage.compiled().evaluate(world)
    lineage = build_lineage(tid.instance, query)
    return lineage.probability_tid(tid) >= 1.0 - EPSILON
