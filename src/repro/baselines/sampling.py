"""Monte-Carlo baselines: naive sampling and Karp–Luby DNF estimation.

The paper positions sampling as what practice falls back to when exact
evaluation is #P-hard ("makes it necessary in practice to approximate query
results via sampling"), and as the partner of the exact method in the
partial-decomposition hybrid (E12).

Both estimators are vectorized when numpy is available: sampled worlds are
drawn as ``(samples, n_vars)`` matrices and pushed through the compiled
circuit's level-scheduled batch kernels (Monte Carlo) or checked for
witness containment with one matrix product per chunk (Karp–Luby). Without
numpy the scalar per-sample loops run instead, with identical estimator
semantics.
"""

from __future__ import annotations

import math

from repro.circuits.compiled import numpy_module
from repro.instances.base import Fact, Instance
from repro.instances.tid import TIDInstance
from repro.util import check, stable_rng

#: Cap on sampled worlds held in memory at once by the vectorized paths.
SAMPLE_CHUNK = 1 << 14


def monte_carlo_probability(
    query, tid: TIDInstance, samples: int, seed: int = 0, method: str = "lineage"
) -> float:
    """Estimate P(query) by sampling worlds and evaluating the query.

    The standard unbiased estimator; its additive error scales as
    ``O(1/sqrt(samples))`` regardless of instance structure.

    With ``method="lineage"`` (the default) the query's lineage circuit is
    built and compiled *once* and the sampled worlds are evaluated in bulk
    over the flat IR — with numpy, thousands of worlds per level-scheduled
    batch pass; without it, one generated-kernel call per world.
    ``method="worlds"`` keeps the original per-world ``query.holds_in``
    evaluation (works for any query object, including those without lineage
    support).
    """
    check(samples > 0, "need at least one sample")
    if method == "worlds":
        draw = tid.world_sampler(seed)
        hits = 0
        for _ in range(samples):
            if query.holds_in(draw()):
                hits += 1
        return hits / samples
    check(method == "lineage", f"unknown sampling method {method!r}")
    from repro.core.engine import build_lineage

    compiled = build_lineage(tid.instance, query).compiled()
    space = tid.event_space()
    marginals = [space.probability(name) for name in compiled.variables()]
    np = numpy_module()
    if np is not None:
        rng = np.random.default_rng(seed if seed is not None else 0)
        probs = np.asarray(marginals, dtype=np.float64)
        hits = 0
        for start in range(0, samples, SAMPLE_CHUNK):
            count = min(SAMPLE_CHUNK, samples - start)
            worlds = rng.random((count, probs.size)) < probs
            hits += sum(compiled.evaluate_batch(worlds))
        return hits / samples
    rng = stable_rng(seed)
    row = [0] * len(marginals)

    def worlds():
        for _ in range(samples):
            for i, p in enumerate(marginals):
                row[i] = rng.random() < p
            yield row

    return sum(compiled.evaluate_batch(worlds())) / samples


def required_samples(epsilon: float, delta: float) -> int:
    """Hoeffding bound: samples for additive error ``epsilon`` w.p. 1-delta."""
    check(0 < epsilon < 1 and 0 < delta < 1, "epsilon and delta must be in (0,1)")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def karp_luby_probability(
    query, tid: TIDInstance, samples: int, seed: int = 0
) -> float:
    """Karp–Luby estimator for the probability of the query's DNF lineage.

    Computes the lineage as a monotone DNF (one conjunct per homomorphism
    witness), then estimates the probability of the union by importance
    sampling over the witnesses. Unlike naive Monte Carlo, the relative error
    is bounded even for tiny probabilities — the classic FPRAS for DNF.

    A sample counts iff its drawn witness is the *first* witness fully
    contained in the sampled world; with numpy the containment test for a
    whole chunk of worlds is one integer matrix product against the
    witness-membership matrix.
    """
    check(samples > 0, "need at least one sample")
    witnesses = _dnf_witnesses(query, tid)
    if not witnesses:
        return 0.0
    weights = []
    for witness in witnesses:
        weight = 1.0
        for f in witness:
            weight *= tid.probability(f)
        weights.append(weight)
    total_weight = sum(weights)
    if total_weight == 0.0:
        return 0.0

    facts = list(tid.facts())
    np = numpy_module()
    if np is not None:
        hits = _karp_luby_hits_vectorized(
            np, witnesses, weights, total_weight, facts, tid, samples, seed
        )
    else:
        hits = _karp_luby_hits_scalar(
            witnesses, weights, total_weight, facts, tid, samples, seed
        )
    return total_weight * hits / samples


def _karp_luby_hits_vectorized(
    np, witnesses, weights, total_weight, facts, tid, samples: int, seed: int
) -> int:
    """Hit count of the Karp–Luby trial, whole chunks of worlds at a time."""
    fact_index = {f: i for i, f in enumerate(facts)}
    probs = np.asarray([tid.probability(f) for f in facts], dtype=np.float64)
    membership = np.zeros((len(witnesses), len(facts)), dtype=np.int32)
    for w, witness in enumerate(witnesses):
        for f in witness:
            membership[w, fact_index[f]] = 1
    sizes = membership.sum(axis=1)
    cumulative = np.cumsum(np.asarray(weights, dtype=np.float64))
    rng = np.random.default_rng(seed if seed is not None else 0)
    hits = 0
    for start in range(0, samples, SAMPLE_CHUNK):
        count = min(SAMPLE_CHUNK, samples - start)
        # Pick witnesses with probability proportional to their weight.
        chosen = np.searchsorted(cumulative, rng.random(count) * total_weight)
        chosen = np.minimum(chosen, len(witnesses) - 1)
        # Sample worlds conditioned on the chosen witness being present.
        worlds = rng.random((count, probs.size)) < probs
        worlds |= membership[chosen].astype(bool)
        # contained[s, w] iff every fact of witness w is in world s.
        contained = worlds.astype(np.int32) @ membership.T == sizes
        first = contained.argmax(axis=1)  # chosen is contained, so a True exists
        hits += int(np.count_nonzero(first == chosen))
    return hits


def _karp_luby_hits_scalar(
    witnesses, weights, total_weight, facts, tid, samples: int, seed: int
) -> int:
    """The per-sample loop of the Karp–Luby trial (numpy-free fallback)."""
    rng = stable_rng(seed)
    probabilities = {f: tid.probability(f) for f in facts}
    hits = 0
    for _ in range(samples):
        # Pick a witness with probability proportional to its weight.
        target = rng.random() * total_weight
        cumulative = 0.0
        chosen = len(witnesses) - 1
        for index, weight in enumerate(weights):
            cumulative += weight
            if target <= cumulative:
                chosen = index
                break
        witness = witnesses[chosen]
        # Sample the remaining facts conditioned on the witness being present.
        world = set(witness)
        for f in facts:
            if f not in world and rng.random() < probabilities[f]:
                world.add(f)
        # Count only if ``chosen`` is the first witness fully contained.
        for index, other in enumerate(witnesses):
            if all(f in world for f in other):
                if index == chosen:
                    hits += 1
                break
    return hits


def _dnf_witnesses(query, tid: TIDInstance) -> list[frozenset[Fact]]:
    """Distinct fact-set conjuncts of the query lineage over the instance."""
    all_facts = Instance(tid.facts())
    seen: dict[frozenset[Fact], None] = {}
    for witness in query.witnesses(all_facts):
        seen.setdefault(frozenset(witness), None)
    return list(seen)
