"""Tests for events: formulas and probability spaces."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.events import (
    FALSE,
    TRUE,
    EventSpace,
    conj,
    disj,
    literal,
    var,
)
from repro.util import ReproError


class TestFormulaEvaluation:
    def test_constants(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False

    def test_variable(self):
        assert var("e").evaluate({"e": True}) is True
        assert var("e").evaluate({"e": False}) is False

    def test_missing_variable_raises(self):
        with pytest.raises(ReproError, match="missing event"):
            var("e").evaluate({})

    def test_connectives(self):
        f = (var("a") & var("b")) | ~var("c")
        assert f.evaluate({"a": True, "b": True, "c": True})
        assert f.evaluate({"a": False, "b": False, "c": False})
        assert not f.evaluate({"a": True, "b": False, "c": True})

    def test_literal(self):
        assert literal("e", True).evaluate({"e": True})
        assert literal("e", False).evaluate({"e": False})

    def test_events_collection(self):
        f = (var("a") & var("b")) | ~var("a")
        assert f.events() == {"a", "b"}

    def test_conj_disj_folding(self):
        assert conj([]) is TRUE
        assert disj([]) is FALSE
        assert conj([TRUE, var("x")]) == var("x")
        assert disj([FALSE, var("x")]) == var("x")
        assert conj([FALSE, var("x")]) is FALSE
        assert disj([TRUE, var("x")]) is TRUE

    def test_double_negation_cancels(self):
        assert ~~var("x") == var("x")

    def test_substitute_to_constant(self):
        f = var("a") & var("b")
        assert f.substitute({"a": True}) == var("b")
        assert f.substitute({"a": False}) is FALSE

    def test_substitute_in_negation(self):
        assert (~var("a")).substitute({"a": False}) is TRUE


@given(
    st.dictionaries(st.sampled_from("abc"), st.booleans(), min_size=3, max_size=3)
)
def test_formula_de_morgan(valuation):
    left = ~(var("a") & var("b"))
    right = ~var("a") | ~var("b")
    assert left.evaluate(valuation) == right.evaluate(valuation)


@given(
    st.dictionaries(st.sampled_from("ab"), st.booleans(), min_size=2, max_size=2),
    st.booleans(),
)
def test_substitute_agrees_with_evaluate(valuation, pin):
    f = (var("a") & ~var("b")) | (var("b") & ~var("a"))
    substituted = f.substitute({"a": pin})
    full = dict(valuation)
    full["a"] = pin
    assert substituted.evaluate(full) == f.evaluate(full)


class TestEventSpace:
    def test_probability_roundtrip(self):
        space = EventSpace({"e": 0.25})
        assert space.probability("e") == 0.25

    def test_invalid_probability(self):
        with pytest.raises(ReproError):
            EventSpace({"e": 1.5})

    def test_conflicting_registration(self):
        space = EventSpace({"e": 0.5})
        with pytest.raises(ReproError, match="different probability"):
            space.add("e", 0.6)

    def test_idempotent_registration(self):
        space = EventSpace({"e": 0.5})
        space.add("e", 0.5)
        assert len(space) == 1

    def test_unknown_event(self):
        with pytest.raises(ReproError, match="unknown event"):
            EventSpace().probability("missing")

    def test_valuations_count(self):
        space = EventSpace({"a": 0.5, "b": 0.5, "c": 0.5})
        assert len(list(space.valuations())) == 8

    def test_valuation_probability(self):
        space = EventSpace({"a": 0.3, "b": 0.8})
        p = space.valuation_probability({"a": True, "b": False})
        assert math.isclose(p, 0.3 * 0.2)

    def test_formula_probability_independent_and(self):
        space = EventSpace({"a": 0.3, "b": 0.5})
        assert math.isclose(space.formula_probability(var("a") & var("b")), 0.15)

    def test_formula_probability_or(self):
        space = EventSpace({"a": 0.3, "b": 0.5})
        expected = 0.3 + 0.5 - 0.15
        assert math.isclose(space.formula_probability(var("a") | var("b")), expected)

    def test_restrict_and_merge(self):
        space = EventSpace({"a": 0.3, "b": 0.5})
        restricted = space.restrict(["a"])
        assert restricted.events() == {"a"}
        merged = restricted.merged(EventSpace({"c": 0.1}))
        assert merged.events() == {"a", "c"}

    def test_sample_deterministic(self):
        space = EventSpace({"a": 0.5, "b": 0.5})
        assert space.sample(seed=1) == space.sample(seed=1)

    def test_sampler_marginal(self):
        space = EventSpace({"a": 0.7})
        draw = space.sampler(seed=0)
        hits = sum(draw()["a"] for _ in range(2000))
        assert abs(hits / 2000 - 0.7) < 0.05

    def test_conditioned_on_literal(self):
        space = EventSpace({"a": 0.3, "b": 0.5})
        pinned = space.conditioned_on_literal("a", True)
        assert pinned.probability("a") == 1.0
        assert pinned.probability("b") == 0.5


@given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0))
def test_formula_probability_matches_inclusion_exclusion(pa, pb):
    space = EventSpace({"a": pa, "b": pb})
    measured = space.formula_probability(var("a") | var("b"))
    assert math.isclose(measured, pa + pb - pa * pb, abs_tol=1e-12)
