"""Command-line interface: regenerate any experiment table from the terminal.

Usage::

    python -m repro list                # list experiments E1..E14
    python -m repro run E3              # print Theorem 1's scaling table
    python -m repro run E3 --engine shannon   # force one engine everywhere
    python -m repro run E14 --workers 4 # sharded evaluation on 4 processes
    python -m repro run all             # print every table (long)
    python -m repro engines             # engines + batch/parallel backends
    python -m repro paper               # one-line paper identification

``--workers`` scopes the process-wide ``parallel_workers`` knob (see
:mod:`repro.circuits.parallel`) to the run, exactly like ``--engine``
scopes the forced engine; ``--workers 0`` forces the single-process
kernels even when ``REPRO_PARALLEL_WORKERS`` is set.

The experiment implementations live in ``benchmarks/bench_*.py``; each has a
``main()`` printing its table. This CLI locates them relative to the
repository root (they are scripts, not package modules, so installed-package
use without the repository falls back to a clear error).
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from contextlib import nullcontext
from pathlib import Path

EXPERIMENTS = {
    "E1": ("bench_figure1_prxml", "Figure 1: the Chelsea Manning PrXML document"),
    "E2": ("bench_table1_cinstance", "Table 1: the PODS/STOC trips c-instance"),
    "E3": ("bench_theorem1_scaling", "Theorem 1: linear time at bounded treewidth"),
    "E4": ("bench_theorem2_pcc", "Theorem 2: bounded-treewidth pcc-instances"),
    "E5": ("bench_scope_prxml", "Bounded event scopes on PrXML"),
    "E6": ("bench_dichotomy", "#P-hardness contrast vs Dalvi–Suciu safe plans"),
    "E7": ("bench_provenance", "Semiring provenance through circuits"),
    "E8": ("bench_order", "Order uncertainty: tractable vs hard"),
    "E9": ("bench_conditioning", "Conditioning and crowd question selection"),
    "E10": ("bench_rules", "Probabilistic rules: the probabilistic chase"),
    "E11": ("bench_ablation_heuristics", "Decomposition-heuristic ablation"),
    "E12": ("bench_hybrid", "Partial decompositions: exact tentacles + sampled core"),
    "E13": ("bench_compiled_eval", "Compiled circuit IR vs object-graph evaluation"),
    "E14": ("bench_parallel_eval", "Sharded multi-process vs single-process batch eval"),
}


def _benchmarks_dir() -> Path:
    candidates = [
        Path(__file__).resolve().parents[2] / "benchmarks",
        Path.cwd() / "benchmarks",
    ]
    for candidate in candidates:
        if candidate.is_dir():
            return candidate
    raise SystemExit(
        "cannot locate the benchmarks/ directory; run from the repository root"
    )


def _load_main(module_name: str):
    path = _benchmarks_dir() / f"{module_name}.py"
    if not path.exists():
        raise SystemExit(f"experiment script missing: {path}")
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    return module.main


def command_list() -> None:
    """Print the experiment index."""
    print(f"{'id':<5} {'script':<28} description")
    for exp_id, (module_name, description) in EXPERIMENTS.items():
        print(f"{exp_id:<5} {module_name:<28} {description}")


def command_run(
    target: str, engine: str | None = None, workers: int | None = None
) -> None:
    """Run one experiment (or 'all'), optionally forcing an engine or workers.

    The forced engine is scoped to the run with
    :func:`repro.circuits.engine_forced` and the worker count with
    :func:`repro.circuits.parallel_workers_set`, so embedding callers
    (tests, the REPL) cannot leak either override into later evaluations.
    """
    from repro.circuits import available_engines, engine_forced, parallel_workers_set

    if engine is not None and engine not in available_engines():
        raise SystemExit(
            f"unknown engine {engine!r}; available: "
            f"{', '.join(available_engines())}"
        )
    if workers is not None and workers < 0:
        raise SystemExit(f"--workers must be >= 0, got {workers}")
    targets = list(EXPERIMENTS) if target.lower() == "all" else [target.upper()]
    for exp_id in targets:
        if exp_id not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {exp_id!r}; use 'list' to see E1..E14"
            )
    with engine_forced(engine) if engine is not None else nullcontext():
        with parallel_workers_set(workers) if workers is not None else nullcontext():
            for exp_id in targets:
                module_name, _description = EXPERIMENTS[exp_id]
                print()
                _load_main(module_name)()
                print()


def command_engines() -> None:
    """Print the engine registry and the batch/parallel backends in use."""
    from repro.circuits import available_engines, capabilities, default_engine
    from repro.circuits.compiled import numpy_module

    print(f"{'engine':<18} role")
    roles = {
        "enumerate": "brute-force oracle (capped variable count)",
        "shannon": "Shannon expansion baseline",
        "message_passing": "junction-tree sum-product (Theorems 1-2)",
        "dd": "linear-time deterministic-decomposable pass",
    }
    for name in available_engines():
        marker = " (default)" if name == default_engine() else ""
        print(f"{name:<18} {roles.get(name, 'custom engine')}{marker}")
    np = numpy_module()
    if np is not None:
        backend = f"numpy {np.__version__} level-scheduled kernels"
    else:
        backend = "scalar generated kernels (numpy not installed)"
    print(f"\nbatch evaluation backend: {backend}")
    caps = capabilities()
    if caps["parallel"]:
        workers = caps["parallel_workers"]
        state = f"{workers} workers" if workers >= 2 else "off (workers=0/1)"
        print(
            f"sharded multi-process backend: available — {state}, "
            f"{caps['cpu_count']} CPU(s); set REPRO_PARALLEL_WORKERS or --workers"
        )
    else:
        print("sharded multi-process backend: unavailable (needs numpy + shared memory)")


def command_paper() -> None:
    """Print the paper this repository reproduces."""
    print(
        "Amarilli, A. Structurally Tractable Uncertain Data. "
        "SIGMOD 2015 PhD Symposium. arXiv:1507.04955"
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Structurally Tractable Uncertain Data — reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments")
    run = sub.add_parser("run", help="run an experiment table")
    run.add_argument("experiment", help="experiment id (E1..E13) or 'all'")
    run.add_argument(
        "--engine",
        default=None,
        help="force one circuit-evaluation engine for the whole run "
        "(enumerate, shannon, message_passing, dd)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard batch evaluation across this many worker processes for "
        "the run (0 forces single-process; default: REPRO_PARALLEL_WORKERS)",
    )
    sub.add_parser("engines", help="show evaluation engines and batch backend")
    sub.add_parser("paper", help="identify the reproduced paper")
    args = parser.parse_args(argv)
    if args.command == "list":
        command_list()
    elif args.command == "run":
        command_run(args.experiment, engine=args.engine, workers=args.workers)
    elif args.command == "engines":
        command_engines()
    elif args.command == "paper":
        command_paper()
    return 0


if __name__ == "__main__":
    sys.exit(main())
