"""Workload generators: certified graphs, Figure 1 / Table 1, logs, KBs (S14)."""

from repro.workloads.generators import (
    GeneratedGraph,
    core_and_tentacles_tid,
    cycle_tid,
    grid_tid,
    partial_ktree_tid,
    path_tid,
    rst_bipartite_tid,
    rst_chain_tid,
)
from repro.workloads.kb import (
    ADVISOR_RULES,
    CITIZEN_RULES,
    KBWorkload,
    advisor_kb,
    citizenship_kb,
)
from repro.workloads.logs import (
    LogWorkload,
    StreamingLogMonitor,
    generate_logs,
    true_interleaving,
)
from repro.workloads.trips import (
    ALL_TRIPS,
    PODS,
    STOC,
    TRIP_CDG_MEL,
    TRIP_CDG_PDX,
    TRIP_MEL_CDG,
    TRIP_MEL_PDX,
    TRIP_PDX_CDG,
    table1_cinstance,
    table1_pc_instance,
)
from repro.workloads.violations import (
    CQAWorkload,
    cqa_trichotomy_queries,
    cqa_workload,
    key_violation_instance,
)
from repro.workloads.wikidata import (
    FIGURE1_EVENT_JANE,
    adversarial_scope_document,
    figure1_document,
    wikidata_like_document,
)

__all__ = [
    "ADVISOR_RULES",
    "ALL_TRIPS",
    "CITIZEN_RULES",
    "CQAWorkload",
    "FIGURE1_EVENT_JANE",
    "GeneratedGraph",
    "KBWorkload",
    "LogWorkload",
    "PODS",
    "STOC",
    "StreamingLogMonitor",
    "TRIP_CDG_MEL",
    "TRIP_CDG_PDX",
    "TRIP_MEL_CDG",
    "TRIP_MEL_PDX",
    "TRIP_PDX_CDG",
    "adversarial_scope_document",
    "advisor_kb",
    "citizenship_kb",
    "core_and_tentacles_tid",
    "cqa_trichotomy_queries",
    "cqa_workload",
    "cycle_tid",
    "figure1_document",
    "generate_logs",
    "grid_tid",
    "key_violation_instance",
    "partial_ktree_tid",
    "path_tid",
    "rst_bipartite_tid",
    "rst_chain_tid",
    "table1_cinstance",
    "table1_pc_instance",
    "true_interleaving",
    "wikidata_like_document",
]
