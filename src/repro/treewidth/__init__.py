"""Tree decompositions, width heuristics, exact treewidth, nice trees (S3)."""

from repro.treewidth.decomposition import TreeDecomposition, from_elimination_order
from repro.treewidth.exact import exact_decomposition, exact_treewidth
from repro.treewidth.heuristics import (
    HEURISTICS,
    MIN_DEGREE,
    MIN_FILL,
    NETWORKX_MIN_DEGREE,
    NETWORKX_MIN_FILL,
    decompose,
    greedy_width,
    min_degree_order,
    min_fill_order,
)
from repro.treewidth.nice import (
    FORGET,
    INTRODUCE,
    JOIN,
    LEAF,
    READ,
    NiceNode,
    NiceTree,
    build_nice_tree,
    check_nice_tree,
)

__all__ = [
    "FORGET",
    "HEURISTICS",
    "INTRODUCE",
    "JOIN",
    "LEAF",
    "MIN_DEGREE",
    "MIN_FILL",
    "NETWORKX_MIN_DEGREE",
    "NETWORKX_MIN_FILL",
    "NiceNode",
    "NiceTree",
    "READ",
    "TreeDecomposition",
    "build_nice_tree",
    "check_nice_tree",
    "decompose",
    "exact_decomposition",
    "exact_treewidth",
    "from_elimination_order",
    "greedy_width",
    "min_degree_order",
    "min_fill_order",
]
