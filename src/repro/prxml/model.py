"""PrXML documents: probabilistic XML with local and global uncertainty.

The PrXML formalism (Kimelfeld–Senellart) extends unordered labeled trees
with *distributional* nodes deciding which children are kept:

- ``ind``  — each child kept independently with its own probability (local);
- ``mux``  — at most one child kept, mutually exclusively (local);
- ``det``  — all children kept (useful under mux);
- ``cie``  — each child kept iff a conjunction of global event literals holds
  (the global-uncertainty class; query evaluation is intractable in general,
  tractable under the paper's bounded event scopes).

Distributional nodes are *virtual*: they do not appear in possible worlds;
their surviving children attach to the nearest regular ancestor. Figure 1 of
the paper (the Chelsea Manning Wikidata entry) is built with exactly these
node kinds — see :func:`repro.workloads.wikidata.figure1_document`.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.events import EventSpace
from repro.util import check

REGULAR = "regular"
IND = "ind"
MUX = "mux"
DET = "det"
CIE = "cie"


@dataclass
class PNode:
    """A PrXML node.

    ``label`` is meaningful for regular nodes. ``probability`` is the
    annotation on the *edge from the parent* when the parent is ind/mux.
    ``conditions`` is the conjunction of event literals (pairs
    ``(event, positive)``) when the parent is cie.
    """

    kind: str
    label: str | None = None
    children: list["PNode"] = field(default_factory=list)
    probability: float | None = None
    conditions: tuple[tuple[str, bool], ...] = ()

    def is_distributional(self) -> bool:
        """Whether this is a virtual (ind/mux/det/cie) node."""
        return self.kind != REGULAR

    def iter_subtree(self) -> Iterator["PNode"]:
        """Yield the node and all of its descendants (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:
        tag = self.label if self.kind == REGULAR else self.kind
        return f"PNode({tag}, children={len(self.children)})"


def regular(label: str, children: Sequence[PNode] = ()) -> PNode:
    """Create a regular node."""
    return PNode(REGULAR, label=label, children=list(children))


def ind(children: Sequence[tuple[PNode, float]]) -> PNode:
    """Create an ``ind`` node from ``(child, probability)`` pairs."""
    node = PNode(IND)
    for child, probability in children:
        check(0.0 <= probability <= 1.0, "ind child probability must be in [0,1]")
        child.probability = probability
        node.children.append(child)
    return node


def mux(children: Sequence[tuple[PNode, float]]) -> PNode:
    """Create a ``mux`` node from ``(child, probability)`` pairs (sum ≤ 1)."""
    node = PNode(MUX)
    total = 0.0
    for child, probability in children:
        check(0.0 <= probability <= 1.0, "mux child probability must be in [0,1]")
        total += probability
        child.probability = probability
        node.children.append(child)
    check(total <= 1.0 + 1e-9, f"mux probabilities sum to {total} > 1")
    return node


def det(children: Sequence[PNode]) -> PNode:
    """Create a ``det`` node keeping all of its children."""
    return PNode(DET, children=list(children))


def cie(children: Sequence[tuple[PNode, Sequence[tuple[str, bool]]]]) -> PNode:
    """Create a ``cie`` node from ``(child, literal-conjunction)`` pairs.

    Each literal is ``(event_name, positive)``; the child survives iff all
    its literals hold under the global event valuation.
    """
    node = PNode(CIE)
    for child, literals in children:
        child.conditions = tuple((str(e), bool(v)) for e, v in literals)
        node.children.append(child)
    return node


class PrXMLDocument:
    """A PrXML document: a regular root plus a space of global events."""

    def __init__(self, root: PNode, space: EventSpace | None = None):
        check(root.kind == REGULAR, "the document root must be a regular node")
        self.root = root
        self.space = space if space is not None else EventSpace()
        self._validate()

    def _validate(self) -> None:
        for node in self.root.iter_subtree():
            if node.kind == CIE:
                for child in node.children:
                    for event, _positive in child.conditions:
                        check(
                            event in self.space,
                            f"cie condition uses unregistered event {event!r}",
                        )
            if node.kind == MUX:
                total = sum(child.probability or 0.0 for child in node.children)
                check(total <= 1.0 + 1e-9, "mux probabilities must sum to at most 1")

    def nodes(self) -> list[PNode]:
        """All nodes of the document in pre-order."""
        return list(self.root.iter_subtree())

    def regular_nodes(self) -> list[PNode]:
        """All regular nodes in pre-order."""
        return [n for n in self.nodes() if n.kind == REGULAR]

    def has_global_uncertainty(self) -> bool:
        """Whether the document contains cie nodes (global correlations)."""
        return any(n.kind == CIE for n in self.nodes())

    def local_choice_count(self) -> int:
        """Number of independent local choices (ind children + mux nodes)."""
        count = 0
        for node in self.nodes():
            if node.kind == IND:
                count += len(node.children)
            elif node.kind == MUX:
                count += 1
        return count

    def __repr__(self) -> str:
        return (
            f"PrXMLDocument(nodes={len(self.nodes())},"
            f" events={len(self.space)}, cie={self.has_global_uncertainty()})"
        )


# Possible worlds are plain immutable trees: (label, (child, ...)).
World = tuple


def world_label(world: World) -> str:
    """The label of a world tree's root."""
    return world[0]


def world_children(world: World) -> tuple:
    """The children of a world tree's root."""
    return world[1]


def make_world(label: str, children: Sequence[World] = ()) -> World:
    """Construct a world tree node."""
    return (label, tuple(children))
