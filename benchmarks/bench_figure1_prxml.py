"""E1 — Figure 1: the Chelsea Manning PrXML document.

Regenerates the paper's Figure 1 annotations as measured probabilities:
the ind-guarded occupation (0.4), the mux-distributed given name
(Bradley 0.6 / Chelsea 0.4), and the eJane-correlated surname / place of
birth pair (0.9 jointly — not 0.81). Cross-checks the circuit engine against
world enumeration and benchmarks both.

Run the table:  python benchmarks/bench_figure1_prxml.py
Benchmarks:     pytest benchmarks/bench_figure1_prxml.py --benchmark-only
"""

import math

from repro.prxml import (
    TreePattern,
    build_pattern_lineage,
    path_pattern,
    pattern,
    query_probability,
    query_probability_enumerate,
)
from repro.workloads import figure1_document

EXPECTED = {
    "occupation=musician": 0.4,
    "given name=Bradley": 0.6,
    "given name=Chelsea": 0.4,
    "surname=Manning": 0.9,
    "place of birth=Crescent": 0.9,
    "surname AND place of birth": 0.9,
}


def figure1_queries() -> dict:
    queries = {
        "occupation=musician": path_pattern("occupation", "musician"),
        "given name=Bradley": path_pattern("given name", "Bradley"),
        "given name=Chelsea": path_pattern("given name", "Chelsea"),
        "surname=Manning": path_pattern("surname", "Manning"),
        "place of birth=Crescent": path_pattern("place of birth", "Crescent"),
    }
    both = pattern("Q298423")
    both.add_child(pattern("surname"))
    both.add_child(pattern("place of birth"))
    queries["surname AND place of birth"] = TreePattern(both)
    return queries


def experiment_rows() -> list[tuple[str, float, float, float]]:
    doc = figure1_document()
    rows = []
    for name, query in figure1_queries().items():
        engine = query_probability(doc, query)
        oracle = query_probability_enumerate(doc, query)
        rows.append((name, EXPECTED[name], engine, oracle))
    return rows


def test_figure1_engine(benchmark):
    doc = figure1_document()
    queries = figure1_queries()

    def evaluate_all():
        return [query_probability(doc, q) for q in queries.values()]

    results = benchmark(evaluate_all)
    for (name, query), measured in zip(queries.items(), results):
        assert math.isclose(measured, EXPECTED[name], abs_tol=1e-9), name


def test_figure1_enumeration_baseline(benchmark):
    doc = figure1_document()
    queries = figure1_queries()

    def enumerate_all():
        return [query_probability_enumerate(doc, q) for q in queries.values()]

    results = benchmark(enumerate_all)
    for (name, _q), measured in zip(queries.items(), results):
        assert math.isclose(measured, EXPECTED[name], abs_tol=1e-9), name


def test_figure1_lineage_construction(benchmark):
    doc = figure1_document()
    query = path_pattern("surname", "Manning")
    lineage = benchmark(build_pattern_lineage, doc, query)
    assert lineage.has_global


def main() -> None:
    print("E1 — Figure 1 (Chelsea Manning PrXML document)")
    print(f"{'query':<32} {'paper':>7} {'engine':>8} {'enum':>8}")
    for name, expected, engine, oracle in experiment_rows():
        print(f"{name:<32} {expected:>7.2f} {engine:>8.4f} {oracle:>8.4f}")


if __name__ == "__main__":
    main()
