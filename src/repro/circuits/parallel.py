"""Sharded multi-process batch evaluation: the fourth lowering stage.

The numpy batch kernels (:mod:`repro.circuits.compiled`, third stage) run a
whole world matrix through one level-scheduled pass — but on a single core.
This module shards that work across a persistent pool of worker processes:

- the compiled circuit's CSR arrays (``kinds``/``offsets``/``indices``/
  ``var_slot``) are published **once** per circuit into a
  :mod:`multiprocessing.shared_memory` segment (:func:`plan_manifest`);
  workers attach, rebuild the level schedule locally, and cache it, so a
  task costs one small pickled descriptor, never a copy of the plan;
- world/marginal matrices are placed in a per-call shared segment and split
  into contiguous **row shards**; each worker writes its slice of the output
  into the same segment, so no matrix crosses a pipe
  (:func:`evaluate_batch_sharded`, :func:`probability_batch_sharded`);
- Monte-Carlo and Karp–Luby get a **fused sample+evaluate** path
  (:func:`monte_carlo_hits`, :func:`karp_luby_hits`): the sample range is cut
  into fixed-size shards of :data:`MC_SHARD` draws, shard ``i`` is generated
  *inside* a worker from ``numpy.random.default_rng((seed, i))``, evaluated
  through the batch kernels, and reduced to a single hit count — the full
  world matrix never exists anywhere, and the parent only sums integers.

**Determinism.** The shard decomposition depends only on ``(samples,
MC_SHARD)`` and each shard's generator only on ``(seed, shard_index)`` —
never on the worker count or scheduling order. A fixed seed therefore gives
*bit-identical* estimates whether the shards run in-process (``workers=0``)
or on 1, 2 or 8 workers.

**Lifecycle.** Segments are named ``repro-plan-*`` (per compiled circuit,
unlinked when the circuit is garbage-collected) and ``repro-buf-*`` (per
call, unlinked in a ``finally``). Everything still live is torn down by an
``atexit`` hook (:func:`shutdown`), and :func:`active_segments` exposes the
registry so tests can assert nothing leaked. A worker that dies (crash,
``kill -9``) is detected: the pool is rebuilt on the next call, and a death
*mid-run* raises :class:`~repro.util.ReproError` after per-call segments are
released.

Knob: ``workers=`` on every entry point, defaulting to the process-wide
:func:`parallel_workers` (settable via :func:`set_parallel_workers`, the
scoped :func:`parallel_workers_set`, the ``REPRO_PARALLEL_WORKERS``
environment variable — an integer or ``auto`` — or the CLI ``--workers``
flag). ``0``/``1`` mean in-process; the fused kernels run either way.
Without numpy (or ``multiprocessing.shared_memory``) the subsystem reports
itself unavailable and every consumer falls back to the serial paths.
"""

from __future__ import annotations

import atexit
import os
import secrets
import signal
import weakref

from repro.circuits import compiled as _compiled
from repro.circuits.compiled import numpy_module
from repro.util import ReproError, check

try:  # capability check: sharded evaluation needs POSIX shared memory
    from multiprocessing import get_all_start_methods, get_context
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - exotic platforms only
    _shm = None

#: Fixed shard granularity (in samples) of the fused sample+evaluate paths.
#: Part of the deterministic seeding scheme: shard ``i`` always covers draws
#: ``[i * MC_SHARD, (i+1) * MC_SHARD)`` regardless of the worker count.
MC_SHARD = 1 << 14

#: Below this many rows the sharded matrix paths are not worth the
#: shared-memory round trip; ``should_shard`` says no.
PARALLEL_MIN_ROWS = 2048

#: Shared-memory name prefixes: per-circuit plans vs per-call buffers.
PLAN_PREFIX = "repro-plan-"
BUFFER_PREFIX = "repro-buf-"

_PLAN_CACHE_LIMIT = 8  # plans cached per worker before eviction


def _workers_from_env() -> int:
    raw = os.environ.get("REPRO_PARALLEL_WORKERS", "").strip().lower()
    if not raw:
        return 0
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


_WORKERS = _workers_from_env()


def parallel_available() -> bool:
    """Whether the sharded multi-process backend can run at all.

    Requires numpy (the workers run the batch kernels) and
    ``multiprocessing.shared_memory``. The knob below is ignored when this
    is false — every consumer silently stays on the serial path.
    """
    return numpy_module() is not None and _shm is not None


def parallel_workers() -> int:
    """The process-wide worker count (0 = serial, the default)."""
    return _WORKERS


def set_parallel_workers(workers: int | None) -> None:
    """Set the process-wide worker count; ``None`` or ``0`` mean serial."""
    global _WORKERS
    workers = 0 if workers is None else int(workers)
    check(workers >= 0, f"worker count must be >= 0, got {workers}")
    _WORKERS = workers


def parallel_workers_set(workers: int | None):
    """Scope a :func:`set_parallel_workers` change, restoring the previous one.

    Thin shim over :func:`repro.config.overrides`.
    """
    from repro import config

    return config.overrides(parallel_workers=workers)


def _effective_workers(workers: int | None) -> int:
    if not parallel_available():
        return 0
    return _WORKERS if workers is None else max(0, int(workers))


def should_shard(n_rows: int, workers: int | None = None) -> bool:
    """Whether a batch of ``n_rows`` should go through the worker pool."""
    return n_rows >= PARALLEL_MIN_ROWS and _effective_workers(workers) >= 2


_SERIAL_FALLBACK_WARNED = False


def warn_serial_fallback(message: str, stacklevel: int = 4) -> None:
    """Warn that a parallel tier degraded to a slower one — once per process.

    Large runs hit the degraded path on *every* batch (a dead pool stays
    dead until the next rebuild), so a per-call warning used to flood the
    output; the first occurrence carries all the signal. Tests reset the
    latch via :func:`reset_serial_fallback_warning`.
    """
    global _SERIAL_FALLBACK_WARNED
    if _SERIAL_FALLBACK_WARNED:
        return
    _SERIAL_FALLBACK_WARNED = True
    import warnings

    warnings.warn(
        message + " (warning once per process)", RuntimeWarning, stacklevel=stacklevel
    )


def reset_serial_fallback_warning() -> None:
    """Re-arm :func:`warn_serial_fallback` (test isolation hook)."""
    global _SERIAL_FALLBACK_WARNED
    _SERIAL_FALLBACK_WARNED = False


# --------------------------------------------------------------------------- #
# shared-memory segments

_LIVE_BUFFERS: dict[str, "SharedBuffers"] = {}


def active_segments() -> tuple[str, ...]:
    """Names of shared-memory segments this process currently owns."""
    return tuple(sorted(_LIVE_BUFFERS))


class SharedBuffers:
    """Named numpy arrays packed into one shared-memory segment.

    The parent constructs one from a ``{name: array-or-(shape, dtype)}``
    mapping (tuples allocate uninitialized output space) and ships the
    pickled :attr:`manifest` — segment name, metadata, and per-array
    ``(key, dtype, shape, offset)`` entries — to workers, which map the
    same physical pages with :meth:`attach`. The creator owns the segment:
    :meth:`close` unlinks it and is idempotent; every live instance is
    registered so :func:`shutdown` can sweep stragglers at exit.
    """

    def __init__(self, arrays, *, prefix: str = BUFFER_PREFIX, meta=None):
        np = numpy_module()
        check(_shm is not None and np is not None, "shared memory requires numpy")
        entries = []
        prepared = []
        offset = 0
        for key, value in arrays.items():
            if isinstance(value, tuple):
                shape, dtype = value
                source = None
            else:
                source = np.ascontiguousarray(value)
                shape, dtype = source.shape, source.dtype
            dtype = np.dtype(dtype)
            offset = -(-offset // 16) * 16  # 16-byte alignment per array
            entries.append((key, dtype.str, tuple(shape), offset))
            prepared.append((key, source, shape, dtype, offset))
            offset += int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        name = prefix + secrets.token_hex(8)
        self.shm = _shm.SharedMemory(name=name, create=True, size=max(1, offset))
        self.closed = False
        self.arrays = {}
        for key, source, shape, dtype, off in prepared:
            view = np.ndarray(shape, dtype=dtype, buffer=self.shm.buf, offset=off)
            if source is not None:
                view[...] = source
            self.arrays[key] = view
        self.manifest = (self.shm.name, dict(meta or {}), tuple(entries))
        _LIVE_BUFFERS[self.shm.name] = self

    def close(self) -> None:
        """Release the views and unlink the segment (idempotent)."""
        if self.closed:
            return
        self.closed = True
        self.arrays = {}
        _LIVE_BUFFERS.pop(self.shm.name, None)
        try:
            self.shm.close()
        except BufferError:  # a caller still holds a view; unlink anyway
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept
            pass

    @staticmethod
    def attach(manifest):
        """Map a manifest's segment; returns ``(shm, meta, views)``.

        The caller must drop the views before closing ``shm`` (and must not
        unlink — the creator owns the segment). Pool workers share the
        parent's resource tracker (fork and spawn both hand the tracker fd
        down), so the attach-side registration is a set-level no-op and the
        name is swept exactly once, when the owner unlinks.
        """
        np = numpy_module()
        name, meta, entries = manifest
        shm = _shm.SharedMemory(name=name)
        views = {
            key: np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
            for key, dtype, shape, off in entries
        }
        return shm, meta, views


def _plan_handle(compiled) -> SharedBuffers:
    """The circuit's CSR arrays in shared memory, published once and cached.

    The segment holds exactly the four int32 batch-plan arrays; workers
    rebuild the level schedule from them. It is unlinked when the compiled
    circuit is garbage-collected (or at interpreter exit via
    :func:`shutdown`), after which a fresh call republishes.
    """
    np = numpy_module()
    handle = compiled._shared_plan
    if handle is not None and handle.closed:
        handle = None
    if handle is None:
        handle = SharedBuffers(
            {
                "kinds": np.asarray(compiled.kinds, dtype=np.int32),
                "offsets": np.asarray(compiled.offsets, dtype=np.int32),
                "indices": np.asarray(compiled.indices, dtype=np.int32),
                "var_slot": np.asarray(compiled.var_slot, dtype=np.int32),
            },
            prefix=PLAN_PREFIX,
            meta={
                "size": compiled.size,
                "output": compiled.output,
                "n_vars": len(compiled.var_names),
            },
        )
        compiled._shared_plan = handle
        weakref.finalize(compiled, handle.close)
    return handle


# --------------------------------------------------------------------------- #
# worker side

class _PlanShell:
    """Duck-type of ``CompiledCircuit`` that ``_BatchPlan`` lowers from."""

    __slots__ = ("kinds", "offsets", "indices", "var_slot", "size", "output")

    def __init__(self, meta, views):
        self.kinds = views["kinds"].tolist()
        self.offsets = views["offsets"].tolist()
        self.indices = views["indices"].tolist()
        self.var_slot = views["var_slot"].tolist()
        self.size = int(meta["size"])
        self.output = int(meta["output"])


def _worker_plan(manifest, cache):
    """A worker's level-scheduled plan for one shared circuit, cached by name."""
    name = manifest[0]
    plan = cache.get(name)
    if plan is None:
        shm, meta, views = SharedBuffers.attach(manifest)
        try:
            shell = _PlanShell(meta, views)
        finally:
            views = None
            shm.close()
        plan = _compiled._BatchPlan(shell)
        while len(cache) >= _PLAN_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        cache[name] = plan
    return plan


def _mc_shard_hits(np, plan, probs32, seed: int, index: int, count: int) -> int:
    """Fused sample+evaluate for one Monte-Carlo shard: worlds never escape.

    Draws ``count`` worlds from the shard's own ``default_rng((seed,
    index))`` as a float32 comparison against the (float32-rounded)
    marginals, runs them through the level-scheduled kernels, and returns
    only the hit count. float32 draws halve the RNG cost of the dominant
    step; the ≤2⁻²⁴ rounding of each marginal is far below Monte-Carlo
    noise at any feasible sample count.
    """
    rng = np.random.default_rng((seed, index))
    worlds = rng.random((count, probs32.size), dtype=np.float32) < probs32
    hits = 0
    step = max(1, _compiled.BATCH_BYTE_BUDGET // max(1, plan.size))
    for start in range(0, count, step):
        hits += int(np.count_nonzero(plan.run(worlds[start : start + step], False)))
    return hits


def _kl_shard_hits(
    np, membership, sizes, probs, cumulative, total_weight, seed, index, count
) -> int:
    """Fused Karp–Luby trial for one shard (witness pick + world + test)."""
    rng = np.random.default_rng((seed, index))
    chosen = np.searchsorted(cumulative, rng.random(count) * total_weight)
    chosen = np.minimum(chosen, len(cumulative) - 1)
    worlds = rng.random((count, probs.size)) < probs
    worlds |= membership[chosen].astype(bool)
    contained = worlds.astype(np.int32) @ membership.T == sizes
    first = contained.argmax(axis=1)  # chosen is contained, so a True exists
    return int(np.count_nonzero(first == chosen))


def _execute_task(np, kind, payload, plan_cache):
    if kind == "eval":
        plan_manifest, data_manifest, as_float, row_start, row_end = payload
        plan = _worker_plan(plan_manifest, plan_cache)
        shm, _meta, views = SharedBuffers.attach(data_manifest)
        try:
            plan.run_into(
                views["matrix"][row_start:row_end],
                views["out"][row_start:row_end],
                as_float,
            )
        finally:
            views = None
            shm.close()
        return None
    if kind == "mc":
        plan_manifest, probs32, seed, index, count = payload
        plan = _worker_plan(plan_manifest, plan_cache)
        return _mc_shard_hits(np, plan, probs32, seed, index, count)
    if kind == "kl":
        tables_manifest, seed, index, count = payload
        shm, meta, views = SharedBuffers.attach(tables_manifest)
        try:
            membership = views["membership"]
            return _kl_shard_hits(
                np,
                membership,
                membership.sum(axis=1, dtype=np.int32),
                views["probs"],
                views["cumulative"],
                meta["total_weight"],
                seed,
                index,
                count,
            )
        finally:
            views = None
            membership = None
            shm.close()
    if kind == "exit":  # test hook: simulate a worker dying mid-run
        os._exit(17)
    raise ReproError(f"unknown parallel task kind {kind!r}")


def _worker_main(tasks, results):
    """Worker loop: pull a task, run it, push ``(id, ok, value)``.

    SIGINT is ignored so a Ctrl-C lands in the parent, which tears the pool
    down through its ``finally``/atexit path; the loop itself exits on the
    ``None`` sentinel. Caught exceptions are reported per task (the pool
    re-raises them as :class:`ReproError`), so one bad shard does not kill
    the worker.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    np = numpy_module()
    plan_cache: dict[str, object] = {}
    while True:
        item = tasks.get()
        if item is None:
            break
        task_id, kind, payload = item
        try:
            value = _execute_task(np, kind, payload, plan_cache)
        except BaseException as exc:  # noqa: BLE001 - reported to the parent
            results.put((task_id, False, f"{type(exc).__name__}: {exc}"))
        else:
            results.put((task_id, True, value))


# --------------------------------------------------------------------------- #
# the pool

class WorkerCrashed(ReproError):
    """A worker process died mid-run (crash, OOM kill, ``kill -9``).

    Distinct from an ordinary task failure — a crashed worker leaves the
    pool degraded, so :func:`_run_tasks` tears it down for rebuilding,
    while a task-level error keeps the healthy pool running.
    """


class WorkerPool:
    """A persistent pool of batch-kernel workers fed through one task queue.

    Workers pull ``(id, kind, payload)`` tuples from a shared queue — big
    operands travel through shared memory, only descriptors are pickled —
    and push results to a shared result queue. :meth:`run` submits a task
    list and blocks until every result arrived, polling worker liveness so
    a crashed worker surfaces as :class:`WorkerCrashed` instead of a hang.
    """

    def __init__(self, size: int):
        check(size >= 1, "worker pool needs at least one worker")
        method = "fork" if "fork" in get_all_start_methods() else "spawn"
        ctx = get_context(method)
        self.size = size
        self.tasks = ctx.SimpleQueue()
        self.results = ctx.Queue()
        self.processes = [
            ctx.Process(target=_worker_main, args=(self.tasks, self.results), daemon=True)
            for _ in range(size)
        ]
        for process in self.processes:
            process.start()
        self._next_id = 0

    def alive(self) -> bool:
        return all(process.is_alive() for process in self.processes)

    def pids(self) -> tuple[int, ...]:
        return tuple(process.pid for process in self.processes)

    def run(self, task_list) -> list:
        """Run ``[(kind, payload), ...]``; results in submission order."""
        import queue as _queue

        ids = []
        for kind, payload in task_list:
            task_id = self._next_id
            self._next_id += 1
            ids.append(task_id)
            self.tasks.put((task_id, kind, payload))
        collected: dict[int, object] = {}
        pending = set(ids)
        while pending:
            try:
                task_id, ok, value = self.results.get(timeout=0.2)
            except _queue.Empty:
                if not self.alive():
                    raise WorkerCrashed(
                        "a parallel worker died mid-run; the pool will be "
                        "rebuilt on the next call"
                    ) from None
                continue
            if task_id not in pending:
                # Stale result from an earlier aborted run (a failure made
                # run() raise while later shards were still in flight);
                # task ids are never reused, so just drop it.
                continue
            if not ok:
                raise ReproError(f"parallel worker failed: {value}")
            collected[task_id] = value
            pending.discard(task_id)
        return [collected[task_id] for task_id in ids]

    def shutdown(self) -> None:
        """Stop every worker (sentinel, then join, then terminate stragglers)."""
        for process in self.processes:
            if process.is_alive():
                try:
                    self.tasks.put(None)
                except (OSError, ValueError):  # pragma: no cover - queue gone
                    break
        for process in self.processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        for q in (self.tasks, self.results):
            try:
                q.close()
            except (OSError, ValueError):  # pragma: no cover
                pass


_POOL: WorkerPool | None = None


def _get_pool(workers: int) -> WorkerPool:
    """The shared pool, rebuilt when the size changes or a worker died."""
    global _POOL
    if _POOL is not None and (_POOL.size != workers or not _POOL.alive()):
        _POOL.shutdown()
        _POOL = None
    if _POOL is None:
        _POOL = WorkerPool(workers)
    return _POOL


def pool_processes() -> tuple[int, ...]:
    """PIDs of the current pool's workers (empty when no pool is running)."""
    return _POOL.pids() if _POOL is not None else ()


def shutdown_pool() -> None:
    """Terminate the worker pool; the next parallel call spawns a fresh one."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


def shutdown() -> None:
    """Tear down the pool and unlink every live shared-memory segment."""
    shutdown_pool()
    for buffers in list(_LIVE_BUFFERS.values()):
        buffers.close()


atexit.register(shutdown)


def _run_tasks(task_list, workers: int) -> list:
    try:
        return _get_pool(workers).run(task_list)
    except WorkerCrashed:
        shutdown_pool()
        raise


# --------------------------------------------------------------------------- #
# sharded entry points

def _row_shards(
    n_rows: int, workers: int, parts_per_worker: int = 2
) -> list[tuple[int, int]]:
    """Contiguous near-equal row ranges, ``parts_per_worker`` per worker.

    Two per worker suffices for the homogeneous local pool; the
    distributed tier asks for more so its work-stealing queue has slack to
    rebalance between hosts of unequal speed.
    """
    parts = min(n_rows, max(1, workers * parts_per_worker))
    bounds = [n_rows * i // parts for i in range(parts + 1)]
    return [(a, b) for a, b in zip(bounds, bounds[1:]) if b > a]


def _sharded_matrix_pass(compiled, matrix, as_float: bool, workers: int | None):
    np = numpy_module()
    check(parallel_available(), "sharded evaluation requires numpy + shared memory")
    workers = _effective_workers(workers)
    dtype = np.float64 if as_float else np.bool_
    matrix = np.ascontiguousarray(matrix, dtype=dtype)
    check(
        matrix.ndim == 2 and matrix.shape[1] == len(compiled.var_names),
        f"world matrix must be (n, {len(compiled.var_names)}), got {matrix.shape}",
    )
    n_rows = matrix.shape[0]
    out_dtype = np.float64 if as_float else np.bool_
    if n_rows == 0:
        return np.empty(0, dtype=out_dtype)
    if workers < 2:
        out = np.empty(n_rows, dtype=out_dtype)
        compiled.batch_plan().run_into(matrix, out, as_float)
        return out
    plan = _plan_handle(compiled)
    data = SharedBuffers({"matrix": matrix, "out": ((n_rows,), out_dtype)})
    try:
        tasks = [
            ("eval", (plan.manifest, data.manifest, as_float, start, end))
            for start, end in _row_shards(n_rows, workers)
        ]
        _run_tasks(tasks, workers)
        return data.arrays["out"].copy()
    finally:
        data.close()


def evaluate_batch_sharded(compiled, matrix, workers: int | None = None):
    """Boolean batch evaluation with the world matrix split across workers.

    ``matrix`` is ``(n_worlds, n_vars)`` in variable-slot order; returns a
    boolean array, one entry per row, bit-identical to
    :meth:`~repro.circuits.compiled.CompiledCircuit.evaluate_batch` — the
    shards run the exact same kernels on the exact same rows. With fewer
    than two effective workers the pass runs in-process.
    """
    return _sharded_matrix_pass(compiled, matrix, as_float=False, workers=workers)


def probability_batch_sharded(compiled, matrix, workers: int | None = None):
    """The Theorem-1 float pass over row-sharded marginal matrices.

    Like :func:`evaluate_batch_sharded` but for
    :meth:`~repro.circuits.compiled.CompiledCircuit.probability_batch`
    (correct on deterministic decomposable circuits only); returns a
    float64 array.
    """
    return _sharded_matrix_pass(compiled, matrix, as_float=True, workers=workers)


def _sample_shards(samples: int) -> list[tuple[int, int]]:
    """``(shard_index, count)`` pairs of the fixed deterministic split."""
    shard = MC_SHARD
    return [
        (index, min(shard, samples - index * shard))
        for index in range((samples + shard - 1) // shard)
    ]


def monte_carlo_hits(
    compiled, marginals, samples: int, seed: int = 0, workers: int | None = None
) -> int:
    """Fused sample+evaluate Monte-Carlo hit count over the lineage circuit.

    Splits ``samples`` into :data:`MC_SHARD`-sized shards, draws each
    shard's worlds from its own ``default_rng((seed, shard_index))`` and
    evaluates them through the level-scheduled batch kernels — inside the
    worker processes when ``workers >= 2``, in-process otherwise, with
    bit-identical results either way. The full world matrix is never
    materialized; only per-shard hit counts are reduced.
    """
    np = numpy_module()
    check(np is not None, "fused Monte-Carlo sampling requires numpy")
    check(samples > 0, "need at least one sample")
    seed = 0 if seed is None else int(seed)
    probs32 = np.asarray(marginals, dtype=np.float32)
    shards = _sample_shards(samples)
    workers = _effective_workers(workers)
    if workers < 2 or len(shards) < 2 or _shm is None:
        plan = compiled.batch_plan()
        return sum(
            _mc_shard_hits(np, plan, probs32, seed, index, count)
            for index, count in shards
        )
    manifest = _plan_handle(compiled).manifest
    tasks = [("mc", (manifest, probs32, seed, index, count)) for index, count in shards]
    return sum(_run_tasks(tasks, workers))


def karp_luby_hits(
    membership,
    probs,
    weights,
    samples: int,
    seed: int = 0,
    workers: int | None = None,
) -> int:
    """Fused Karp–Luby trial count over the witness-membership matrix.

    ``membership`` is the 0/1 ``(n_witnesses, n_facts)`` matrix, ``probs``
    the per-fact marginals, ``weights`` the per-witness weights. Uses the
    same deterministic ``(seed, shard_index)`` scheme as
    :func:`monte_carlo_hits`; each worker draws its shard's witness picks
    and worlds and tests containment with one matrix product.
    """
    np = numpy_module()
    check(np is not None, "fused Karp–Luby sampling requires numpy")
    check(samples > 0, "need at least one sample")
    seed = 0 if seed is None else int(seed)
    membership = np.ascontiguousarray(membership, dtype=np.int32)
    probs = np.ascontiguousarray(probs, dtype=np.float64)
    cumulative = np.cumsum(np.asarray(weights, dtype=np.float64))
    total_weight = float(cumulative[-1])
    shards = _sample_shards(samples)
    workers = _effective_workers(workers)
    if workers < 2 or len(shards) < 2 or _shm is None:
        sizes = membership.sum(axis=1, dtype=np.int32)
        return sum(
            _kl_shard_hits(
                np, membership, sizes, probs, cumulative, total_weight,
                seed, index, count,
            )
            for index, count in shards
        )
    tables = SharedBuffers(
        {"membership": membership, "probs": probs, "cumulative": cumulative},
        meta={"total_weight": total_weight},
    )
    try:
        tasks = [
            ("kl", (tables.manifest, seed, index, count)) for index, count in shards
        ]
        return sum(_run_tasks(tasks, workers))
    finally:
        tables.close()
