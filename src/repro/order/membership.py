"""Possible-world membership for po-relations.

"Given a labeled partial order, we cannot tractably determine whether an
input total order is one of its possible worlds" — the paper's hardness
observation (the problem is NP-hard with duplicate labels, by reduction from
matching-with-precedences). We provide the general backtracking decision
procedure plus the tractable special cases the paper highlights: distinct
labels, unordered posets, and totally ordered posets.
"""

from __future__ import annotations

from collections import Counter

from repro.order.posets import LabeledPoset
from repro.order.linear_extensions import extension_labels, iter_linear_extensions


def is_possible_world(poset: LabeledPoset, sequence: tuple) -> bool:
    """Whether ``sequence`` (a tuple of labels) is a possible world.

    Dispatches to a polynomial special case when one applies, otherwise
    falls back to backtracking (exponential in the worst case).
    """
    if len(sequence) != len(poset):
        return False
    if Counter(sequence) != Counter(poset.labels().values()):
        return False
    if poset.is_unordered():
        return True  # multiset equality, already checked
    if poset.has_distinct_labels():
        return _distinct_labels_case(poset, sequence)
    if poset.is_total():
        return _total_order_case(poset, sequence)
    return membership_backtracking(poset, sequence)


def _distinct_labels_case(poset: LabeledPoset, sequence: tuple) -> bool:
    """Distinct labels: the element order is forced; check it respects ≤."""
    by_label = {label: e for e, label in poset.labels().items()}
    elements = tuple(by_label[label] for label in sequence)
    position = {e: i for i, e in enumerate(elements)}
    return all(position[a] < position[b] for a, b in poset.closure_pairs())


def _total_order_case(poset: LabeledPoset, sequence: tuple) -> bool:
    """Total order: exactly one world; compare label sequences."""
    extension = next(iter_linear_extensions(poset))
    return extension_labels(poset, extension) == tuple(sequence)


def membership_backtracking(poset: LabeledPoset, sequence: tuple) -> bool:
    """General decision procedure: match the sequence greedily with backtracking.

    At step i, try every currently-minimal element whose label equals
    ``sequence[i]``. Exponential in the worst case (duplicate labels force
    branching); this is the cost the paper's hardness remark predicts.
    """
    elements = poset.elements()
    predecessor_sets = {e: poset.predecessors(e) for e in elements}

    def extend(index: int, remaining: set) -> bool:
        if index == len(sequence):
            return not remaining
        target = sequence[index]
        for e in elements:
            if (
                e in remaining
                and poset.label(e) == target
                and not (predecessor_sets[e] & remaining)
            ):
                remaining.discard(e)
                if extend(index + 1, remaining):
                    remaining.add(e)
                    return True
                remaining.add(e)
        return False

    return extend(0, set(elements))


def certain_pairs(poset: LabeledPoset) -> set[tuple]:
    """Label pairs ``(x, y)`` with x before y in *every* possible world.

    Computed exactly for small posets by enumerating worlds; a certain-answer
    primitive over order-incomplete data.
    """
    worlds = [extension_labels(poset, ext) for ext in iter_linear_extensions(poset)]
    if not worlds:
        return set()
    labels = set(poset.labels().values())
    candidates = {
        (x, y) for x in labels for y in labels if x != y
    }
    for world in worlds:
        surviving = set()
        for x, y in candidates:
            positions_x = [i for i, l in enumerate(world) if l == x]
            positions_y = [i for i, l in enumerate(world) if l == y]
            if positions_x and positions_y and max(positions_x) < min(positions_y):
                surviving.add((x, y))
        candidates = surviving
        if not candidates:
            break
    return candidates
