"""Bag semantics for the positive relational algebra on po-relations.

Following the paper's [6] ("Querying order-incomplete data"), a po-relation
is a labeled partial order whose possible worlds are the label sequences of
its linear extensions. The operators:

- ``selection``  — keep elements whose tuple satisfies a predicate (induced
  order on survivors);
- ``projection`` — rewrite labels (order unchanged, duplicates allowed: bag
  semantics);
- ``union``      — parallel composition: no constraints between the inputs,
  so worlds are all interleavings of the inputs' worlds;
- ``concat``     — series composition: everything in the first input before
  everything in the second (the ordered-concatenation variant of union);
- ``product_direct`` — pairs ordered componentwise (the DIR semantics);
- ``product_lex``    — pairs ordered lexicographically (the LEX semantics).

Unions and concatenations of singletons build exactly the series-parallel
posets, the class on which counting possible worlds is polynomial
(:mod:`repro.order.series_parallel`) — one of the tractable structures the
paper points to.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.order.posets import LabeledPoset


def selection(poset: LabeledPoset, predicate: Callable[[object], bool]) -> LabeledPoset:
    """σ: keep elements whose label satisfies ``predicate``."""
    keep = [e for e in poset.elements() if predicate(poset.label(e))]
    return poset.restricted_to(keep)


def projection(poset: LabeledPoset, mapping: Callable[[object], object]) -> LabeledPoset:
    """π: rewrite every label through ``mapping`` (bag semantics)."""
    return poset.relabeled(mapping)


def union(left: LabeledPoset, right: LabeledPoset) -> LabeledPoset:
    """∪ (parallel composition): disjoint union with no cross constraints."""
    result = LabeledPoset({})
    for side, poset in (("L", left), ("R", right)):
        for e in poset.elements():
            result.add_element((side, e), poset.label(e))
        for a, b in poset.hasse_edges():
            result.add_order((side, a), (side, b))
    return result


def concat(first: LabeledPoset, second: LabeledPoset) -> LabeledPoset:
    """Series composition: all of ``first`` before all of ``second``."""
    result = union(first, second)
    first_max = [
        ("L", e)
        for e in first.elements()
        if not any(first.less_than(e, other) for other in first.elements())
    ]
    second_min = [("R", e) for e in second.minimal_elements()]
    for a in first_max:
        for b in second_min:
            result.add_order(a, b)
    return result


def product_direct(left: LabeledPoset, right: LabeledPoset) -> LabeledPoset:
    """×ᴰᴵᴿ: pairs with the componentwise (direct product) order.

    ``(a, b) < (a', b')`` iff ``a ≤ a'`` and ``b ≤ b'`` with at least one
    strict. The least constrained product semantics.
    """
    result = LabeledPoset({})
    left_elements = left.elements()
    right_elements = right.elements()
    for a in left_elements:
        for b in right_elements:
            label = _pair_label(left.label(a), right.label(b))
            result.add_element((a, b), label)
    for a1 in left_elements:
        for b1 in right_elements:
            for a2 in left_elements:
                for b2 in right_elements:
                    if (a1, b1) == (a2, b2):
                        continue
                    le_left = a1 == a2 or left.less_than(a1, a2)
                    le_right = b1 == b2 or right.less_than(b1, b2)
                    if le_left and le_right:
                        result.add_order((a1, b1), (a2, b2))
    return result


def product_lex(left: LabeledPoset, right: LabeledPoset) -> LabeledPoset:
    """×ᴸᴱˣ: lexicographic product.

    ``(a, b) < (a', b')`` iff ``a < a'``, or ``a = a'`` and ``b < b'`` — the
    semantics matching a nested-loop implementation over ordered inputs.
    """
    result = LabeledPoset({})
    for a in left.elements():
        for b in right.elements():
            result.add_element((a, b), _pair_label(left.label(a), right.label(b)))
    for a1 in left.elements():
        for b1 in right.elements():
            for a2 in left.elements():
                for b2 in right.elements():
                    if (a1, b1) == (a2, b2):
                        continue
                    if left.less_than(a1, a2) or (a1 == a2 and right.less_than(b1, b2)):
                        result.add_order((a1, b1), (a2, b2))
    return result


def _pair_label(a, b) -> tuple:
    """Concatenate two tuple labels (scalars treated as 1-tuples)."""
    ta = a if isinstance(a, tuple) else (a,)
    tb = b if isinstance(b, tuple) else (b,)
    return ta + tb


def interleavings(first: tuple, second: tuple) -> list[tuple]:
    """All interleavings of two sequences (the spec of union's worlds)."""
    if not first:
        return [tuple(second)]
    if not second:
        return [tuple(first)]
    with_first = [
        (first[0],) + rest for rest in interleavings(first[1:], second)
    ]
    with_second = [
        (second[0],) + rest for rest in interleavings(first, second[1:])
    ]
    return with_first + with_second
