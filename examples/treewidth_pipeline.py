"""The full Theorem 1 / Theorem 2 pipeline, step by step.

Walks through every stage of the paper's Section 2.2 method on a real
instance: Gaifman graph → tree decomposition → nice tree with fact reads →
deterministic automaton run → lineage circuit (checked deterministic and
decomposable) → linear-time probability; then the pcc variant with
correlated annotations and junction-tree message passing; then MSO beyond
conjunctive queries (reachability), and the partial-decomposition hybrid.

Run:  python examples/treewidth_pipeline.py
"""

from repro import (
    STConnectivityAutomaton,
    atom,
    cq,
    pcc_probability,
    tid_probability,
    variables,
)
from repro.circuits import check_decomposability, check_determinism_sampled
from repro.core import build_lineage
from repro.core.hybrid import hybrid_stconn, monte_carlo_stconn
from repro.events import var
from repro.instances import PCInstance, fact, pcc_from_pc
from repro.workloads import core_and_tentacles_tid, partial_ktree_tid, rst_chain_tid

X, Y = variables("x", "y")
Q_RST = cq(atom("R", X), atom("S", X, Y), atom("T", Y))


def theorem1_pipeline() -> None:
    print("=" * 70)
    print("Theorem 1 pipeline: bounded-treewidth TID, step by step")
    print("=" * 70)
    tid = rst_chain_tid(12, seed=0)
    print(f"1. instance: {len(tid)} independent uncertain facts")

    graph = tid.instance.gaifman_graph()
    print(f"2. Gaifman graph: {graph.number_of_nodes()} vertices, "
          f"{graph.number_of_edges()} edges")

    lineage = build_lineage(tid.instance, Q_RST)
    decomposition = lineage.decomposition
    print(f"3. tree decomposition: {len(decomposition.bags)} bags, "
          f"width {decomposition.width()}")
    print(f"4. nice tree: {lineage.nice_tree.root.size()} nodes "
          f"({lineage.nice_tree.count('read')} fact reads)")
    print(f"5. deterministic automaton run: <= {lineage.max_profile_size} "
          f"profiles per node")
    print(f"6. lineage circuit: {len(lineage.circuit)} gates"
          f" | deterministic: {check_determinism_sampled(lineage.circuit)}"
          f" | decomposable: {check_decomposability(lineage.circuit)}")
    probability = lineage.probability_tid(tid)
    print(f"7. probability by one linear pass: {probability:.6f}")
    assert abs(probability - tid_probability(Q_RST, tid)) < 1e-12


def theorem2_pipeline() -> None:
    print()
    print("=" * 70)
    print("Theorem 2 pipeline: correlated annotations (pcc-instance)")
    print("=" * 70)
    pc = PCInstance()
    pc.add_event("src_a", 0.8)   # two data sources of different reliability
    pc.add_event("src_b", 0.6)
    for i in range(6):
        source = var("src_a") if i % 2 == 0 else var("src_b")
        pc.add(fact("R", i), source)
        pc.add(fact("T", i), source)
        if i + 1 < 6:
            pc.add(fact("S", i, i + 1), var("src_a") | var("src_b"))
    pcc = pcc_from_pc(pc)
    print(f"instance: {len(pcc)} facts correlated through "
          f"{len(pcc.space)} source events")
    print(f"joint instance+circuit width (heuristic): {pcc.joint_width()}")
    p, report = pcc_probability(Q_RST, pcc, return_report=True)
    print(f"message-passing evaluation: P = {p:.6f}  "
          f"(junction tree width {report.width}, {report.bag_count} bags)")


def beyond_cq() -> None:
    print()
    print("=" * 70)
    print("Beyond CQs: MSO reachability on a certified partial 2-tree")
    print("=" * 70)
    generated = partial_ktree_tid(40, 2, seed=5)
    tid = generated.tid
    vertices = sorted({a for f in tid.facts() for a in f.args})
    s, t = vertices[0], vertices[-1]
    auto = STConnectivityAutomaton(s, t)
    p = tid_probability(auto, tid, decomposition=generated.decomposition)
    print(f"instance: {len(tid)} uncertain edges, certified width "
          f"{generated.decomposition.width()}")
    print(f"P[{s} ~ {t}] = {p:.6f}  (exact, via the certified decomposition)")


def hybrid_demo() -> None:
    print()
    print("=" * 70)
    print("Partial decompositions: exact tentacles + sampled core")
    print("=" * 70)
    tid = core_and_tentacles_tid(core_size=5, tentacle_count=3, tentacle_length=5, seed=2)
    s, t = "core0", "t2_4"
    estimate, reduction = hybrid_stconn(tid, s, t, samples=5000, seed=0)
    naive = monte_carlo_stconn(tid, s, t, samples=5000, seed=0)
    print(f"original: {len(tid)} uncertain edges"
          f" | reduced: {len(reduction.reduced)} "
          f"({reduction.fragments_summarized} fragments summarized exactly)")
    print(f"hybrid estimate: {estimate:.4f}   naive Monte Carlo: {naive:.4f}")


if __name__ == "__main__":
    theorem1_pipeline()
    theorem2_pipeline()
    beyond_cq()
    hybrid_demo()
    print("\nPipeline example complete.")
