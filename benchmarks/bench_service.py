"""E19 — query-service throughput: coalesced vs uncoalesced request passes.

The always-on service (:mod:`repro.service`) argues that batching across
*users* is the same win as batching across *rows*: one level-scheduled
matrix pass costs barely more for 64 rows than for one, so merging
concurrent ``/probability`` requests into shared passes should raise QPS
roughly with the client count while keeping every marginal bit-identical.
This bench measures that claim end to end, over real sockets and real
``repro serve-http`` subprocesses:

- two services are spawned in sequence, identical except for the
  ``--no-coalesce`` flag (the every-request-its-own-pass baseline);
- each is hammered by 1, 8 and 64 concurrent clients, every request a
  single *cold* valuation row (unique per request, so the result cache
  never answers and each cell measures evaluation, not caching);
- per cell the bench records QPS, client-observed p50/p99 latency, and
  the service's own pass counters — ``passes / requests`` is the direct
  measure of how many requests shared one matrix pass;
- every served marginal is checked against the library's
  ``probability_batch`` on the same rows, **bitwise**.

The comparison used to be a 1e-12 tolerance: the uncoalesced baseline
evaluates one row per pass, and numpy's reduce kernels picked a
different inner loop for single-column value buffers than for wider
ones — exactly one ulp of drift on the 120-chain plan. The batch plan
now routes single rows through a width-2 broadcast pass so every batch
shape shares one reduction order, and the bench pins the strong claim:
served marginals equal ``probability_batch`` bit for bit, whatever mix
of pass shapes the coalescer produced.

The headline — ``coalescing_speedup_at_64`` — is overhead *elimination*
(fewer kernel launches for the same rows), not parallel speedup, so it
holds on a 1-CPU container just like the pool-amortization headline of
E15; the regression gate keeps it from silently regressing. The p99
latencies are reported for the record (wall-clock numbers on shared CI
are honest but noisy; the throughput ratio is the stable signal).

Run the table:  python benchmarks/bench_service.py
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.circuits import compile_circuit
from repro.circuits import compiled as compiled_module
from repro.core import build_lineage
from repro.queries import atom, cq, variables
from repro.service import ServiceClient, spawn_service
from repro.util import stable_rng
from repro.workloads import rst_chain_tid

CHAIN_LENGTH = 120        # same circuit family as E15: ~5.2k gates
FACT_PROBABILITY = 0.15
CLIENT_COUNTS = (1, 8, 64)
REQUESTS_PER_CELL = 256   # total requests per (mode, clients) cell

_REPO_ROOT = Path(__file__).resolve().parents[1]


def build_compiled():
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = rst_chain_tid(CHAIN_LENGTH, probability=FACT_PROBABILITY, seed=0)
    return compile_circuit(build_lineage(tid.instance, query).circuit)


def direct_marginals(compiled, rows):
    np = compiled_module.numpy_module()
    if np is not None:
        return compiled.probability_batch(np.asarray(rows, dtype=np.float64))
    return compiled.probability_batch(rows)


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, int(q * len(sorted_values)) - 1))
    return sorted_values[index]


def run_cell(url: str, digest: str, n_clients: int, rows: list[list[float]],
             passes_before: int) -> dict:
    """Hammer the service with ``n_clients`` threads over ``rows``.

    Each thread owns one keep-alive client and walks its slice of the
    cold rows, one row per request. Returns QPS, latency percentiles,
    the serve-side pass counters for the cell, and the served marginals
    (aligned with ``rows``) for the bit-identity check.
    """
    per_thread = len(rows) // n_clients
    served: list = [None] * len(rows)
    latencies: list[list[float]] = [[] for _ in range(n_clients)]
    errors: list = []
    start_barrier = threading.Barrier(n_clients + 1)

    def worker(thread_index: int) -> None:
        client = ServiceClient(url)
        try:
            start_barrier.wait(timeout=30.0)
            begin = thread_index * per_thread
            for offset in range(per_thread):
                row_index = begin + offset
                started = time.perf_counter()
                response = client.probability(digest, [rows[row_index]])
                latencies[thread_index].append(
                    time.perf_counter() - started
                )
                served[row_index] = response["marginals"][0]
        except Exception as exc:  # noqa: BLE001 - surfaced after join
            errors.append(exc)
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(n_clients)]
    for thread in threads:
        thread.start()
    start_barrier.wait(timeout=30.0)
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=300.0)
    wall = time.perf_counter() - wall_start
    if errors:
        raise errors[0]
    stats_client = ServiceClient(url)
    try:
        coalescer = stats_client.stats()["coalescer"]
    finally:
        stats_client.close()
    total_requests = per_thread * n_clients
    all_latencies = sorted(
        value for bucket in latencies for value in bucket
    )
    return {
        "clients": n_clients,
        "requests": total_requests,
        "wall_seconds": wall,
        "qps": total_requests / wall if wall > 0 else 0.0,
        "p50_ms": _percentile(all_latencies, 0.50) * 1e3,
        "p99_ms": _percentile(all_latencies, 0.99) * 1e3,
        "passes": coalescer["passes"] - passes_before,
        "passes_total": coalescer["passes"],
        "served": served[:total_requests],
        "rows_used": total_requests,
    }


def run_mode(coalesce: bool, compiled, rng) -> dict:
    """One service lifetime: every client count against one spawn."""
    handle = spawn_service(coalesce=coalesce)
    cells = {}
    served_equal = True  # served == direct, bitwise (see module docstring)
    try:
        registrar = handle.client()
        digest = registrar.register_compiled(compiled)
        # One warmup pass so no cell pays first-request numpy warmup.
        width = len(compiled.variables())
        registrar.probability(digest, [[0.5] * width])
        for n_clients in CLIENT_COUNTS:
            passes_before = registrar.stats()["coalescer"]["passes"]
            rows = [[rng.random() for _ in range(width)]
                    for _ in range(REQUESTS_PER_CELL)]
            cell = run_cell(handle.url, digest, n_clients, rows,
                            passes_before)
            expected = [
                float(v)
                for v in direct_marginals(compiled, rows[:cell["rows_used"]])
            ]
            served = cell.pop("served")
            if len(served) != len(expected) or any(
                value is None or value != want
                for value, want in zip(served, expected)
            ):
                served_equal = False
            cells[str(n_clients)] = cell
    finally:
        try:
            handle.client(timeout=5.0).shutdown()
            handle.wait_dead(10.0)
        except Exception:
            pass
        handle.stop()
    return {"cells": cells, "served_matches_direct": served_equal}


def main() -> None:
    print("E19 — query service: coalesced vs uncoalesced request passes")
    compiled = build_compiled()
    print(f"plan: {compiled.size} gates, {len(compiled.variables())} "
          f"variables, digest {compiled.plan_digest()}")
    numpy_note = ("numpy batch kernels"
                  if compiled_module.numpy_module() is not None
                  else "scalar kernels (numpy unavailable)")
    print(f"evaluation backend: {numpy_note}")
    rng = stable_rng(19)
    modes = {
        "uncoalesced": run_mode(False, compiled, rng),
        "coalesced": run_mode(True, compiled, rng),
    }

    header = (f"{'mode':<13} {'clients':>7} {'requests':>8} {'passes':>7} "
              f"{'qps':>9} {'p50 ms':>8} {'p99 ms':>8}")
    print()
    print(header)
    for mode_name, mode in modes.items():
        for n_clients in CLIENT_COUNTS:
            cell = mode["cells"][str(n_clients)]
            print(f"{mode_name:<13} {cell['clients']:>7} "
                  f"{cell['requests']:>8} {cell['passes']:>7} "
                  f"{cell['qps']:>9.1f} {cell['p50_ms']:>8.2f} "
                  f"{cell['p99_ms']:>8.2f}")

    at64_coalesced = modes["coalesced"]["cells"]["64"]
    at64_uncoalesced = modes["uncoalesced"]["cells"]["64"]
    speedup_64 = (at64_coalesced["qps"] / at64_uncoalesced["qps"]
                  if at64_uncoalesced["qps"] > 0 else 0.0)
    passes_per_request_64 = (at64_coalesced["passes"]
                             / max(1, at64_coalesced["requests"]))
    served_equal = (modes["coalesced"]["served_matches_direct"]
                    and modes["uncoalesced"]["served_matches_direct"])
    print()
    print(f"coalescing speedup at 64 clients: {speedup_64:.2f}x "
          f"({at64_coalesced['qps']:.1f} vs {at64_uncoalesced['qps']:.1f} qps)")
    print(f"passes per request at 64 clients: {passes_per_request_64:.3f} "
          f"({at64_coalesced['passes']} passes for "
          f"{at64_coalesced['requests']} requests)")
    print("served marginals match probability_batch (bitwise): "
          + ("yes" if served_equal else "NO — INVESTIGATE"))

    result = {
        "experiment": "E19",
        "chain_length": CHAIN_LENGTH,
        "requests_per_cell": REQUESTS_PER_CELL,
        "numpy": compiled_module.numpy_module() is not None,
        "modes": {
            name: {
                "served_matches_direct": mode["served_matches_direct"],
                "cells": mode["cells"],
            }
            for name, mode in modes.items()
        },
        "coalescing_speedup_at_64": speedup_64,
        "passes_per_request_at_64": passes_per_request_64,
        "p99_ms_coalesced_at_64": at64_coalesced["p99_ms"],
        "p99_ms_uncoalesced_at_64": at64_uncoalesced["p99_ms"],
        "served_matches_direct": served_equal,
    }
    out_path = _REPO_ROOT / "BENCH_service.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main()
