"""Packaging for the Structurally Tractable Uncertain Data reproduction.

Kept as a plain ``setup.py`` (rather than ``pyproject.toml``) so
``pip install -e . --no-build-isolation`` works on machines where PEP 517
editable installs are unavailable.

``numpy`` is a hard install requirement: the compiled circuit IR's batch
kernels (``repro/circuits/compiled.py``) vectorize over it. The library
still *imports* and passes its test suite without numpy — every batch
entry point falls back to the scalar kernels behind a capability check —
but installs should get the fast path by default.
"""

from setuptools import find_packages, setup

setup(
    name="repro-uncertain-data",
    version="0.3.0",
    description=(
        "Reproduction of 'Structurally Tractable Uncertain Data' "
        "(Amarilli, SIGMOD 2015 PhD Symposium)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "networkx",
        "numpy",
    ],
    extras_require={
        "test": ["pytest", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
            "repro-worker=repro.cli:worker_main",
        ],
    },
)
