"""Trip planning under uncertainty: ranked answers and iterative refinement.

Extends the paper's Table 1 scenario: a researcher's booked flights depend on
uncertain conference attendance. We rank the possible destinations by exact
probability (non-Boolean query answers), then refine the plan as information
arrives — first conditioning on an observed booking, then asking the
traveller directly (crowd-style) until the itinerary is certain.

Run:  python examples/trip_planning.py
"""

from repro.conditioning import ConditionedInstance, SimulatedCrowd, run_crowd_session
from repro.core import answer_probabilities, certain, possible
from repro.instances import TIDInstance, pcc_from_pc
from repro.queries import atom, cq, variables
from repro.workloads import ALL_TRIPS, TRIP_MEL_PDX, table1_pc_instance

X, Y = variables("x", "y")


def rank_destinations() -> None:
    print("=" * 70)
    print("Where will the researcher fly? (ranked answers, exact)")
    print("=" * 70)
    pc = table1_pc_instance(p_pods=0.7, p_stoc=0.5)
    pcc = pcc_from_pc(pc)
    # Marginal view as a TID for per-answer ranking.
    tid = TIDInstance({f: pc.fact_probability(f) for f in pcc.facts()})

    query = cq(atom("Trip", X, Y))
    print(f"{'leg':<40} {'P':>6} {'possible':>9} {'certain':>8}")
    for answer in answer_probabilities(query, (X, Y), tid):
        leg = f"{answer.values[0]} -> {answer.values[1]}"
        print(f"{leg:<40} {answer.probability:>6.2f} "
              f"{str(answer.possible):>9} {str(answer.certain):>8}")

    out_of_mel = cq(atom("Trip", "Melbourne MEL", Y))
    print(f"\n  possible to leave Melbourne: {possible(out_of_mel, tid)}")
    print(f"  certain to leave Melbourne:  {certain(out_of_mel, tid)}")


def refine_with_observation() -> None:
    print()
    print("=" * 70)
    print("A booking confirmation arrives: MEL -> PDX is booked")
    print("=" * 70)
    pcc = pcc_from_pc(table1_pc_instance(p_pods=0.7, p_stoc=0.5))
    conditioned = ConditionedInstance(pcc).observe_fact(TRIP_MEL_PDX, True)
    print("posterior trip probabilities:")
    for trip in ALL_TRIPS:
        print(f"  P({trip}) = {conditioned.fact_probability(trip):.2f}")
    print("  (booking MEL->PDX reveals pods AND stoc: the itinerary is now"
          " CDG->MEL->PDX->CDG)")


def refine_by_asking() -> None:
    print()
    print("=" * 70)
    print("No confirmation? Ask the traveller (greedy question selection)")
    print("=" * 70)
    pcc = pcc_from_pc(table1_pc_instance(p_pods=0.7, p_stoc=0.5))
    itinerary_query = cq(atom("Trip", "Paris CDG", "Melbourne MEL"))
    traveller = SimulatedCrowd({"pods": True, "stoc": False}, error_rate=0.0)
    session = run_crowd_session(
        pcc, itinerary_query, traveller, budget=2, policy="greedy"
    )
    for step in session.steps:
        print(f"  asked about {step.question!r}: {step.answer} "
              f"(entropy {step.entropy_before:.2f} -> {step.entropy_after:.2f})")
    print(f"  final P[CDG -> MEL booked] = {session.final_probability:.2f}"
          f" after {traveller.questions_asked} question(s)")


if __name__ == "__main__":
    rank_destinations()
    refine_with_observation()
    refine_by_asking()
    print("\nTrip planning example complete.")
