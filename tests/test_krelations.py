"""Tests for K-relations: the annotated positive relational algebra."""

import random

import pytest

from repro.instances import Instance, fact
from repro.queries import atom, cq, variables
from repro.semirings import (
    BooleanSemiring,
    CountingSemiring,
    KRelation,
    PolynomialSemiring,
    PosBoolSemiring,
    TropicalSemiring,
    evaluate_cq_algebraically,
    from_instance,
    reference_provenance,
)
from repro.util import ReproError

X, Y = variables("x", "y")
N = CountingSemiring()


def bag(rows):
    """A counting-semiring relation over two columns."""
    r = KRelation(N, ["a", "b"])
    for values, count in rows:
        r.add(values, count)
    return r


class TestAlgebra:
    def test_add_merges_annotations(self):
        r = KRelation(N, ["a"])
        r.add((1,), 2)
        r.add((1,), 3)
        assert r.annotation((1,)) == 5

    def test_zero_annotations_dropped(self):
        r = KRelation(TropicalSemiring(), ["a"])
        r.add((1,), TropicalSemiring().zero())
        assert len(r) == 0

    def test_select(self):
        r = bag([((1, 2), 1), ((3, 4), 2)])
        selected = r.select(lambda row: row["a"] == 3)
        assert selected.rows() == {(3, 4): 2}

    def test_project_sums_collapsed(self):
        r = bag([((1, 2), 1), ((1, 3), 2)])
        projected = r.project(["a"])
        assert projected.annotation((1,)) == 3  # bag semantics: 1 + 2

    def test_project_unknown_attribute(self):
        with pytest.raises(ReproError, match="unknown attributes"):
            bag([]).project(["ghost"])

    def test_union_requires_same_schema(self):
        with pytest.raises(ReproError, match="schema mismatch"):
            bag([]).union(KRelation(N, ["x", "y"]))

    def test_union_adds(self):
        left = bag([((1, 2), 1)])
        right = bag([((1, 2), 5), ((9, 9), 1)])
        merged = left.union(right)
        assert merged.annotation((1, 2)) == 6
        assert merged.annotation((9, 9)) == 1

    def test_join_multiplies(self):
        left = bag([((1, 2), 2)])
        right = KRelation(N, ["b", "c"], {(2, 7): 3})
        joined = left.join(right)
        assert joined.attributes == ("a", "b", "c")
        assert joined.annotation((1, 2, 7)) == 6

    def test_join_no_shared_is_cross_product(self):
        left = KRelation(N, ["a"], {(1,): 2})
        right = KRelation(N, ["b"], {(5,): 3, (6,): 1})
        joined = left.join(right)
        assert len(joined) == 2
        assert joined.annotation((1, 5)) == 6

    def test_rename(self):
        r = bag([((1, 2), 1)]).rename({"a": "x"})
        assert r.attributes == ("x", "b")

    def test_bag_join_counts_multiplicities(self):
        # Classic: |R ⋈ S| in bag semantics is the product of multiplicities.
        left = KRelation(N, ["a"], {(1,): 2})
        right = KRelation(N, ["a"], {(1,): 3})
        assert left.join(right).annotation((1,)) == 6


class TestAlgebraicCQEvaluation:
    def make_instance(self):
        return Instance(
            [
                fact("R", 1),
                fact("S", 1, 2),
                fact("T", 2),
                fact("R", 3),
                fact("S", 3, 2),
            ]
        )

    @pytest.mark.parametrize(
        "semiring,annotate",
        [
            (BooleanSemiring(), lambda f: True),
            (CountingSemiring(), lambda f: 1),
            (TropicalSemiring(), lambda f: float(len(str(f)))),
        ],
        ids=["boolean", "counting", "tropical"],
    )
    def test_matches_reference_provenance(self, semiring, annotate):
        inst = self.make_instance()
        query = cq(atom("R", X), atom("S", X, Y), atom("T", Y))
        relations = from_instance(inst, semiring, annotate)
        algebraic = evaluate_cq_algebraically(query, relations)
        reference = reference_provenance(query, inst, semiring, annotate)
        assert algebraic == reference

    def test_posbool_matches_reference(self):
        inst = self.make_instance()
        semiring = PosBoolSemiring()
        annotate = {f: semiring.variable(f.variable_name) for f in inst.facts()}
        query = cq(atom("R", X), atom("S", X, Y), atom("T", Y))
        relations = from_instance(inst, semiring, annotate)
        assert evaluate_cq_algebraically(query, relations) == reference_provenance(
            query, inst, semiring, annotate
        )

    def test_polynomial_matches_reference(self):
        inst = self.make_instance()
        semiring = PolynomialSemiring()
        annotate = {f: semiring.variable(f.variable_name) for f in inst.facts()}
        query = cq(atom("S", X, Y))
        relations = from_instance(inst, semiring, annotate)
        assert evaluate_cq_algebraically(query, relations) == reference_provenance(
            query, inst, semiring, annotate
        )

    def test_constants_in_query(self):
        inst = self.make_instance()
        query = cq(atom("S", 1, Y), atom("T", Y))
        relations = from_instance(inst, N, lambda f: 1)
        assert evaluate_cq_algebraically(query, relations) == 1

    def test_repeated_variable(self):
        inst = Instance([fact("S", 1, 1), fact("S", 1, 2)])
        query = cq(atom("S", X, X))
        relations = from_instance(inst, N, lambda f: 1)
        assert evaluate_cq_algebraically(query, relations) == 1

    def test_missing_relation(self):
        query = cq(atom("Ghost", X))
        with pytest.raises(ReproError, match="no K-relation"):
            evaluate_cq_algebraically(query, {})

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances_counting(self, seed):
        rng = random.Random(seed)
        inst = Instance()
        n = rng.randint(2, 4)
        for i in range(n):
            if rng.random() < 0.8:
                inst.add(fact("R", i))
            if rng.random() < 0.8:
                inst.add(fact("T", i))
        for _ in range(rng.randint(1, 2 * n)):
            inst.add(fact("S", rng.randrange(n), rng.randrange(n)))
        query = cq(atom("R", X), atom("S", X, Y), atom("T", Y))
        relations = from_instance(inst, N, lambda f: 1)
        algebraic = evaluate_cq_algebraically(query, relations)
        assert algebraic == len(list(query.homomorphisms(inst)))
