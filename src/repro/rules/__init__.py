"""Probabilistic rules: tgds, chase, probabilistic chase (S12)."""

from repro.rules.chase import Null, certain_answer, chase
from repro.rules.probabilistic import (
    RULE_LEVEL,
    TRIGGER_LEVEL,
    ProbabilisticRule,
    derived_fact_probability,
    probabilistic_chase,
)
from repro.rules.tgds import ExistentialRule, is_weakly_acyclic, rule

__all__ = [
    "ExistentialRule",
    "Null",
    "ProbabilisticRule",
    "RULE_LEVEL",
    "TRIGGER_LEVEL",
    "certain_answer",
    "chase",
    "derived_fact_probability",
    "is_weakly_acyclic",
    "probabilistic_chase",
    "rule",
]
