"""Existential rules (tuple-generating dependencies) and weak acyclicity.

The rule language of the paper's Section 2.3 vision: rules may assert the
existence of *new* elements ("a PhD student and their advisor have probably
co-authored some paper"), which plain Datalog cannot. A rule is

    body(x̄, ȳ) → ∃z̄ head(x̄, z̄)

with frontier variables x̄ shared between body and head and existential
variables z̄ instantiated by fresh labeled nulls during the chase. Weak
acyclicity (the standard position-graph test) guarantees chase termination.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import networkx as nx

from repro.queries.cq import Atom, Variable
from repro.util import check


@dataclass(frozen=True)
class ExistentialRule:
    """A tgd ``body → ∃(head-vars ∖ body-vars) head``."""

    body: tuple[Atom, ...]
    head: tuple[Atom, ...]

    def __post_init__(self):
        check(len(self.body) > 0, "rule body cannot be empty")
        check(len(self.head) > 0, "rule head cannot be empty")

    def body_variables(self) -> frozenset[Variable]:
        """Variables occurring in the body."""
        return frozenset().union(*(a.variables() for a in self.body))

    def head_variables(self) -> frozenset[Variable]:
        """Variables occurring in the head."""
        return frozenset().union(*(a.variables() for a in self.head))

    def frontier(self) -> frozenset[Variable]:
        """Variables shared between body and head."""
        return self.body_variables() & self.head_variables()

    def existential_variables(self) -> frozenset[Variable]:
        """Head variables not bound by the body (instantiated by nulls)."""
        return self.head_variables() - self.body_variables()

    def is_guarded(self) -> bool:
        """Whether some body atom contains all body variables (guarded tgd).

        The paper's candidate class for preserving treewidth-based
        tractability through the chase.
        """
        all_vars = self.body_variables()
        return any(a.variables() == all_vars for a in self.body)

    def __repr__(self) -> str:
        body = " ∧ ".join(repr(a) for a in self.body)
        head = " ∧ ".join(repr(a) for a in self.head)
        existentials = ",".join(sorted(v.name for v in self.existential_variables()))
        prefix = f"∃{existentials} " if existentials else ""
        return f"{body} → {prefix}{head}"


def rule(body: Iterable[Atom], head: Iterable[Atom]) -> ExistentialRule:
    """Convenience constructor for existential rules."""
    return ExistentialRule(tuple(body), tuple(head))


def is_weakly_acyclic(rules: Iterable[ExistentialRule]) -> bool:
    """Standard weak-acyclicity test on the position dependency graph.

    Positions are ``(relation, index)``. For each rule and each frontier
    variable at body position p: add a normal edge p → q for every head
    position q of that variable, and a *special* edge p → q for every head
    position q of an existential variable. Weakly acyclic iff no cycle goes
    through a special edge — which bounds the chase.
    """
    rules = list(rules)
    graph = nx.DiGraph()
    special: set[tuple] = set()
    for r in rules:
        frontier = r.frontier()
        body_positions: dict[Variable, list[tuple]] = {}
        for a in r.body:
            for index, term in enumerate(a.terms):
                if isinstance(term, Variable) and term in frontier:
                    body_positions.setdefault(term, []).append((a.relation, index))
        for v, positions in body_positions.items():
            for p in positions:
                graph.add_node(p)
                for h in r.head:
                    for index, term in enumerate(h.terms):
                        if not isinstance(term, Variable):
                            continue
                        q = (h.relation, index)
                        if term == v:
                            graph.add_edge(p, q)
                        elif term in r.existential_variables():
                            graph.add_edge(p, q)
                            special.add((p, q))
    # A special edge inside a strongly connected component = bad cycle.
    for component in nx.strongly_connected_components(graph):
        if len(component) == 1:
            node = next(iter(component))
            if (node, node) in special and graph.has_edge(node, node):
                return False
            continue
        for a, b in special:
            if a in component and b in component:
                return False
    return True
