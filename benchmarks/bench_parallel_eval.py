"""E14 — sharded multi-process batch evaluation vs the single-process kernel.

The fourth lowering stage, measured on a Monte-Carlo workload: estimate
P(∃xy R(x)S(x,y)T(y)) on an R–S–T chain TID by sampling worlds and pushing
them through the compiled lineage circuit. Compared paths:

- **baseline** — PR 2's single-process numpy batch kernel: one sequential
  ``default_rng`` draws float64 world chunks in the parent, each chunk runs
  through ``CompiledCircuit.evaluate_batch``, hits are summed in Python;
- **fused, in-process** — :func:`repro.circuits.parallel.monte_carlo_hits`
  with ``workers=0``: the deterministic ``(seed, shard)`` scheme, float32
  draws, hit counts reduced without leaving numpy;
- **fused, sharded** — the same shards dispatched to 1 / 2 / 4 worker
  processes that rebuild the plan from shared memory and generate their own
  worlds, so the world matrix never exists in the parent.

A second table shards a large ``probability_batch`` marginal matrix
(row-split through shared memory) against the in-process float pass.

Every fused row must produce the *same hit count* for the fixed seed
regardless of worker count — the bench asserts it. Wall-clock speedup at 4
workers is the acceptance headline; near-linear scaling needs >= 4 physical
cores, so the JSON records ``cpu_count`` and the speedup observed on the
machine that ran it (on a single-core host only the fused-kernel advantage
remains and the scaling rows stay flat — the numbers are honest either
way). CI regenerates ``BENCH_parallel_eval.json`` on multicore runners and
uploads it as an artifact.

Run the table:  python benchmarks/bench_parallel_eval.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.circuits import compile_circuit
from repro.circuits import parallel
from repro.circuits.compiled import numpy_module
from repro.core import build_lineage
from repro.queries import atom, cq, variables
from repro.workloads import rst_chain_tid

CHAIN_LENGTH = 120  # ~5.2k reachable gates, ~360 variables
FACT_PROBABILITY = 0.15  # keeps P(query) well inside (0, 1) at this length
MC_SAMPLES = 400_000
PROBABILITY_ROWS = 20_000
WORKER_COUNTS = (1, 2, 4)
SEED = 0

#: Acceptance target: wall-clock speedup of the 4-worker fused path over
#: the single-process numpy batch kernel (needs >= 4 physical cores).
TARGET_SPEEDUP = 2.5


def build_compiled():
    x, y = variables("x", "y")
    query = cq(atom("R", x), atom("S", x, y), atom("T", y))
    tid = rst_chain_tid(CHAIN_LENGTH, probability=FACT_PROBABILITY, seed=0)
    lineage = build_lineage(tid.instance, query)
    return compile_circuit(lineage.circuit), tid.event_space()


def baseline_monte_carlo(np, compiled, probs, samples: int, seed: int) -> int:
    """PR 2's single-process numpy batch kernel, verbatim: the reference."""
    rng = np.random.default_rng(seed)
    chunk = 1 << 14
    hits = 0
    for start in range(0, samples, chunk):
        count = min(chunk, samples - start)
        worlds = rng.random((count, probs.size)) < probs
        hits += sum(compiled.evaluate_batch(worlds))
    return hits


def _timed(fn, repeats: int = 3):
    """Best wall time over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> None:
    np = numpy_module()
    print("E14 — sharded multi-process vs single-process batch evaluation")
    if np is None:
        print("numpy unavailable: the sharded backend needs the batch kernels;"
              " nothing to measure")
        return
    cpu_count = os.cpu_count() or 1
    compiled, space = build_compiled()
    probs = np.asarray([space.probability(n) for n in compiled.variables()])
    print(f"lineage circuit: {compiled.size} gates,"
          f" {len(compiled.variables())} variables; {cpu_count} CPU(s) visible")
    print(f"Monte-Carlo workload: {MC_SAMPLES} samples, seed {SEED}")
    compiled.evaluate_batch(np.zeros((4, probs.size), dtype=bool))  # warm plan

    baseline_seconds, baseline_hits = _timed(
        lambda: baseline_monte_carlo(np, compiled, probs, MC_SAMPLES, SEED)
    )
    rows = [("single-process numpy kernel", baseline_seconds, 1.0, baseline_hits)]

    fused_seconds, fused_hits = _timed(
        lambda: parallel.monte_carlo_hits(
            compiled, probs, MC_SAMPLES, seed=SEED, workers=0
        )
    )
    rows.append(
        ("fused sample+evaluate, in-process", fused_seconds,
         baseline_seconds / fused_seconds, fused_hits)
    )

    worker_seconds: dict[int, float] = {}
    hit_counts = {0: fused_hits}
    for workers in WORKER_COUNTS:
        seconds, hits = _timed(
            lambda workers=workers: parallel.monte_carlo_hits(
                compiled, probs, MC_SAMPLES, seed=SEED, workers=workers
            )
        )
        worker_seconds[workers] = seconds
        hit_counts[workers] = hits
        rows.append(
            (f"fused sharded, {workers} worker(s)", seconds,
             baseline_seconds / seconds, hits)
        )
    assert len(set(hit_counts.values())) == 1, (
        f"fixed-seed estimates must be identical across worker counts: {hit_counts}"
    )

    print(f"\n{'path':<38} {'wall':>10} {'speedup':>9} {'estimate':>10}")
    for label, seconds, speedup, hits in rows:
        print(f"{label:<38} {seconds:>8.3f} s {speedup:>8.2f}x"
              f" {hits / MC_SAMPLES:>10.6f}")

    # Row-sharded probability_batch on a large marginal matrix.
    matrix = np.tile(probs, (PROBABILITY_ROWS, 1))
    serial_prob_seconds, serial_probs = _timed(
        lambda: compiled.probability_batch(matrix)
    )
    sharded_prob_seconds, sharded_probs = _timed(
        lambda: parallel.probability_batch_sharded(compiled, matrix, workers=4)
    )
    assert np.allclose(serial_probs, sharded_probs), "sharded rows must agree"
    prob_speedup = serial_prob_seconds / sharded_prob_seconds
    print(f"\nprobability_batch, {PROBABILITY_ROWS} rows:")
    print(f"{'in-process float pass':<38} {serial_prob_seconds:>8.3f} s {1.0:>8.2f}x")
    print(f"{'row-sharded, 4 workers':<38} {sharded_prob_seconds:>8.3f} s"
          f" {prob_speedup:>8.2f}x")

    speedup_at_4 = baseline_seconds / worker_seconds[4]
    result = {
        "gates": compiled.size,
        "variables": len(compiled.variables()),
        "cpu_count": cpu_count,
        "mc_samples": MC_SAMPLES,
        "seed": SEED,
        "estimate": fused_hits / MC_SAMPLES,
        "estimates_identical_across_worker_counts": True,
        "baseline_seconds": baseline_seconds,
        "fused_inprocess_seconds": fused_seconds,
        "fused_kernel_speedup": baseline_seconds / fused_seconds,
        "worker_seconds": {str(w): s for w, s in worker_seconds.items()},
        "worker_speedups": {
            str(w): baseline_seconds / s for w, s in worker_seconds.items()
        },
        "speedup_at_4_workers": speedup_at_4,
        "probability_batch_rows": PROBABILITY_ROWS,
        "probability_batch_serial_seconds": serial_prob_seconds,
        "probability_batch_sharded_seconds": sharded_prob_seconds,
        "probability_batch_speedup": prob_speedup,
        "target_speedup_at_4_workers": TARGET_SPEEDUP,
        "note": (
            "speedups are wall-clock on this machine; the >= 2.5x target "
            "assumes >= 4 physical cores — on fewer cores the sharded rows "
            "collapse onto the fused in-process kernel's advantage"
        ),
    }
    out_path = Path(__file__).resolve().parents[1] / "BENCH_parallel_eval.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    verdict = "PASS" if speedup_at_4 >= TARGET_SPEEDUP else "FAIL"
    print(f"target: >= {TARGET_SPEEDUP}x over the single-process kernel at "
          f"4 workers — {verdict} ({speedup_at_4:.2f}x on {cpu_count} CPU(s))")
    if cpu_count < 4 and speedup_at_4 < TARGET_SPEEDUP:
        print("note: this host exposes fewer than 4 CPUs; the sharded path "
              "cannot scale here and the measured speedup is the fused "
              "kernel's alone. Re-run on >= 4 cores (CI does) for the "
              "scaling result.")
    parallel.shutdown_pool()


if __name__ == "__main__":
    main()
