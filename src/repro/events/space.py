"""Probability spaces over independent Boolean events.

A :class:`EventSpace` assigns an independent marginal probability to each
named event. pc-instances, PrXML documents and probabilistic chase runs all
draw their randomness from such a space; correlations are expressed *through*
formulas and circuits over the events, never inside the space itself.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Mapping

from repro.events.formulas import Formula, Valuation
from repro.util import ReproError, check, stable_rng


class EventSpace:
    """A finite set of independent Boolean events with marginal probabilities.

    >>> space = EventSpace({"pods": 0.7, "stoc": 0.4})
    >>> space.probability("pods")
    0.7
    >>> len(list(space.valuations()))
    4
    """

    def __init__(self, probabilities: Mapping[str, float] | None = None):
        self._probabilities: dict[str, float] = {}
        if probabilities:
            for name, p in probabilities.items():
                self.add(name, p)

    def add(self, name: str, probability: float) -> str:
        """Register event ``name`` with the given marginal probability."""
        check(0.0 <= probability <= 1.0, f"probability of {name!r} must be in [0,1], got {probability}")
        if name in self._probabilities and self._probabilities[name] != probability:
            raise ReproError(f"event {name!r} already registered with a different probability")
        self._probabilities[name] = float(probability)
        return name

    def probability(self, name: str) -> float:
        """Return the marginal probability of ``name``."""
        if name not in self._probabilities:
            raise ReproError(f"unknown event {name!r}")
        return self._probabilities[name]

    def events(self) -> frozenset[str]:
        """Return the set of registered event names."""
        return frozenset(self._probabilities)

    def __contains__(self, name: str) -> bool:
        return name in self._probabilities

    def __len__(self) -> int:
        return len(self._probabilities)

    def restrict(self, names: Iterable[str]) -> "EventSpace":
        """Return the sub-space containing only the events in ``names``."""
        names = set(names)
        missing = names - set(self._probabilities)
        check(not missing, f"unknown events {sorted(missing)}")
        return EventSpace({n: self._probabilities[n] for n in names})

    def merged(self, other: "EventSpace") -> "EventSpace":
        """Return the union of two spaces (consistent overlaps allowed)."""
        merged = EventSpace(self._probabilities)
        for name in other.events():
            merged.add(name, other.probability(name))
        return merged

    def valuations(self, names: Iterable[str] | None = None) -> Iterator[dict[str, bool]]:
        """Enumerate all valuations of ``names`` (default: all events).

        Exponential in the number of events; intended for oracles and tests.
        """
        ordered = sorted(names if names is not None else self._probabilities)
        for bits in itertools.product([False, True], repeat=len(ordered)):
            yield dict(zip(ordered, bits))

    def valuation_probability(self, valuation: Valuation) -> float:
        """Return the product probability of ``valuation`` over its keys."""
        result = 1.0
        for name, value in valuation.items():
            p = self.probability(name)
            result *= p if value else 1.0 - p
        return result

    def formula_probability(self, formula: Formula) -> float:
        """Exact probability of ``formula`` by brute-force enumeration.

        Exponential in the number of events of the formula; used as a
        reference oracle by tests and small examples.
        """
        total = 0.0
        for valuation in self.valuations(formula.events()):
            if formula.evaluate(valuation):
                total += self.valuation_probability(valuation)
        return total

    def sample(self, seed: int | None = None, names: Iterable[str] | None = None) -> dict[str, bool]:
        """Draw one valuation of ``names`` (default: all events) at random."""
        rng = stable_rng(seed)
        ordered = sorted(names if names is not None else self._probabilities)
        return {name: rng.random() < self._probabilities[name] for name in ordered}

    def sampler(self, seed: int | None = None):
        """Return a callable producing a fresh random valuation per call."""
        rng = stable_rng(seed)
        ordered = sorted(self._probabilities)

        def draw() -> dict[str, bool]:
            return {name: rng.random() < self._probabilities[name] for name in ordered}

        return draw

    def conditioned_on_literal(self, name: str, value: bool) -> "EventSpace":
        """Return the space where ``name`` is forced to ``value``.

        Because events are independent, conditioning on a literal simply pins
        the event's marginal to 0 or 1 — the structural-tractability-preserving
        case discussed in the paper's Section 4.
        """
        check(name in self._probabilities, f"unknown event {name!r}")
        updated = dict(self._probabilities)
        updated[name] = 1.0 if value else 0.0
        return EventSpace(updated)
