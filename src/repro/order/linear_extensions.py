"""Linear extensions: enumeration, counting, uniform sampling.

The possible worlds of a po-relation are its linear extensions. Counting
them is #P-complete in general (Brightwell–Winkler, the paper's [14]); we
provide the standard downset dynamic program (exponential worst case, fast on
narrow posets) plus exact uniform sampling driven by the same table. The
series-parallel fast path lives in :mod:`repro.order.series_parallel`.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.order.posets import Element, LabeledPoset
from repro.util import check, stable_rng


def iter_linear_extensions(poset: LabeledPoset) -> Iterator[tuple[Element, ...]]:
    """Enumerate all linear extensions (sequences of elements).

    Backtracking over minimal elements; output order is deterministic.
    """
    elements = poset.elements()
    predecessor_sets = {e: poset.predecessors(e) for e in elements}

    def extend(remaining: set[Element], prefix: list[Element]) -> Iterator[tuple]:
        if not remaining:
            yield tuple(prefix)
            return
        for e in elements:
            if e in remaining and not (predecessor_sets[e] & remaining):
                prefix.append(e)
                remaining.discard(e)
                yield from extend(remaining, prefix)
                remaining.add(e)
                prefix.pop()

    yield from extend(set(elements), [])


def count_linear_extensions(poset: LabeledPoset) -> int:
    """Count linear extensions via the downset dynamic program.

    ``L(S) = Σ over maximal e of S of L(S − e)`` where S ranges over downsets;
    memoized on frozensets. Worst case exponential (the problem is
    #P-complete); efficient when the poset has small width.
    """
    elements = poset.elements()
    successors = {e: set() for e in elements}
    for e in elements:
        for p in poset.predecessors(e):
            successors[p].add(e)
    memo: dict[frozenset, int] = {frozenset(): 1}

    def count(remaining: frozenset) -> int:
        cached = memo.get(remaining)
        if cached is not None:
            return cached
        total = 0
        for e in remaining:
            # e can be placed last iff none of its successors remain.
            if not (successors[e] & remaining):
                total += count(remaining - {e})
        memo[remaining] = total
        return total

    return count(frozenset(elements))


def sample_linear_extension(
    poset: LabeledPoset, seed: int | None = None
) -> tuple[Element, ...]:
    """Draw a uniformly random linear extension.

    Exact sampling by proportional choice of the next minimal element,
    weighted by the count of completions (shares the counting memo).
    """
    rng = stable_rng(seed)
    elements = poset.elements()
    predecessor_sets = {e: poset.predecessors(e) for e in elements}
    successors = {e: set() for e in elements}
    for e in elements:
        for p in predecessor_sets[e]:
            successors[p].add(e)
    memo: dict[frozenset, int] = {frozenset(): 1}

    def count(remaining: frozenset) -> int:
        cached = memo.get(remaining)
        if cached is not None:
            return cached
        total = 0
        for e in remaining:
            if not (successors[e] & remaining):
                total += count(remaining - {e})
        memo[remaining] = total
        return total

    sequence: list[Element] = []
    remaining = frozenset(elements)
    while remaining:
        minimals = [
            e for e in elements if e in remaining and not (predecessor_sets[e] & remaining)
        ]
        weights = [count(remaining - {e}) for e in minimals]
        total = sum(weights)
        check(total > 0, "internal error: no completion")
        draw = rng.randrange(total)
        cumulative = 0
        chosen = minimals[-1]
        for e, w in zip(minimals, weights):
            cumulative += w
            if draw < cumulative:
                chosen = e
                break
        sequence.append(chosen)
        remaining = remaining - {chosen}
    return tuple(sequence)


def extension_labels(poset: LabeledPoset, extension: tuple[Element, ...]) -> tuple:
    """Read a linear extension through the labeling (a possible world)."""
    return tuple(poset.label(e) for e in extension)


def possible_worlds(poset: LabeledPoset) -> list[tuple]:
    """All distinct label sequences realizable by linear extensions."""
    seen: dict[tuple, None] = {}
    for extension in iter_linear_extensions(poset):
        seen.setdefault(extension_labels(poset, extension), None)
    return list(seen)


def is_linear_extension(poset: LabeledPoset, sequence: tuple[Element, ...]) -> bool:
    """Whether ``sequence`` lists all elements in an order-respecting way."""
    if sorted(map(str, sequence)) != sorted(map(str, poset.elements())):
        return False
    position = {e: i for i, e in enumerate(sequence)}
    return all(position[a] < position[b] for a, b in poset.closure_pairs())
