"""Relational substrate: instances, TIDs, c-/pc-/pcc-instances (S4)."""

from repro.instances.base import Constant, Fact, Instance, fact
from repro.instances.cinstance import CInstance, PCInstance
from repro.instances.cinstance import from_tid as pc_from_tid
from repro.instances.pcc import PCCInstance
from repro.instances.pcc import from_pc_instance as pcc_from_pc
from repro.instances.pcc import from_tid as pcc_from_tid
from repro.instances.tid import TIDInstance

__all__ = [
    "CInstance",
    "Constant",
    "Fact",
    "Instance",
    "PCCInstance",
    "PCInstance",
    "TIDInstance",
    "fact",
    "pc_from_tid",
    "pcc_from_pc",
    "pcc_from_tid",
]
