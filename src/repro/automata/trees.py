"""Ranked trees and the binary encoding of unordered labeled trees.

Tree automata run on *ranked* trees; unranked document trees are bridged via
the classic first-child / next-sibling binary encoding. ``LEAF`` marks the
absence of a child (the nullary symbol of the encoding).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.prxml.model import World, make_world, world_children, world_label

LEAF = "#"


@dataclass(frozen=True)
class BinaryTree:
    """A binary tree node: a symbol and zero or two children."""

    symbol: str
    left: "BinaryTree | None" = None
    right: "BinaryTree | None" = None

    def is_leaf(self) -> bool:
        """Whether this is a nullary (leaf) node."""
        return self.left is None and self.right is None

    def size(self) -> int:
        """Number of nodes."""
        total = 1
        if self.left is not None:
            total += self.left.size()
        if self.right is not None:
            total += self.right.size()
        return total

    def __repr__(self) -> str:
        if self.is_leaf():
            return self.symbol
        return f"{self.symbol}({self.left!r}, {self.right!r})"


def leaf() -> BinaryTree:
    """The nullary leaf marker."""
    return BinaryTree(LEAF)


def node(symbol: str, left: BinaryTree, right: BinaryTree) -> BinaryTree:
    """A binary internal node."""
    return BinaryTree(symbol, left, right)


def encode_world(world: World) -> BinaryTree:
    """First-child / next-sibling encoding of an unordered labeled tree.

    ``encode(t)``'s left child encodes t's first child (with its siblings
    chained to the right); the right child encodes t's next sibling. The
    root has no sibling, so its right child is a leaf.
    """

    def encode_forest(trees: tuple) -> BinaryTree:
        if not trees:
            return leaf()
        first, rest = trees[0], trees[1:]
        return BinaryTree(
            world_label(first),
            encode_forest(world_children(first)),
            encode_forest(rest),
        )

    return encode_forest((world,))


def decode_world(tree: BinaryTree) -> World:
    """Inverse of :func:`encode_world` (for round-trip tests)."""

    def decode_forest(t: BinaryTree) -> tuple:
        if t.is_leaf():
            return ()
        first = make_world(t.symbol, decode_forest(t.left))  # type: ignore[arg-type]
        return (first,) + decode_forest(t.right)  # type: ignore[arg-type]

    forest = decode_forest(tree)
    return forest[0]
