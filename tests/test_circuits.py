"""Tests for Boolean circuits and the three WMC engines."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    Circuit,
    check_decomposability,
    check_determinism_sampled,
    circuit_width,
    from_formula,
    moral_graph,
    probability_dd,
    wmc_enumerate,
    wmc_message_passing,
    wmc_shannon,
)
from repro.events import EventSpace, var
from repro.util import ReproError


def xor_circuit() -> Circuit:
    c = Circuit()
    a, b = c.variable("a"), c.variable("b")
    g = c.or_gate(
        [c.and_gate([a, c.negation(b)]), c.and_gate([c.negation(a), b])]
    )
    c.set_output(g)
    return c


class TestConstruction:
    def test_hash_consing(self):
        c = Circuit()
        assert c.variable("x") == c.variable("x")
        g1 = c.and_gate([c.variable("x"), c.variable("y")])
        g2 = c.and_gate([c.variable("x"), c.variable("y")])
        assert g1 == g2

    def test_constant_folding_and(self):
        c = Circuit()
        assert c.and_gate([c.true(), c.variable("x")]) == c.variable("x")
        assert c.and_gate([c.false(), c.variable("x")]) == c.false()

    def test_constant_folding_or(self):
        c = Circuit()
        assert c.or_gate([c.false(), c.variable("x")]) == c.variable("x")
        assert c.or_gate([c.true(), c.variable("x")]) == c.true()

    def test_empty_gates(self):
        c = Circuit()
        assert c.gate(c.and_gate([])).payload is True
        assert c.gate(c.or_gate([])).payload is False

    def test_double_negation(self):
        c = Circuit()
        x = c.variable("x")
        assert c.negation(c.negation(x)) == x

    def test_unknown_input_rejected(self):
        c = Circuit()
        with pytest.raises(ReproError):
            c.and_gate([99])

    def test_variables_reachable_only(self):
        c = Circuit()
        c.variable("unused")
        g = c.variable("used")
        c.set_output(g)
        assert c.variables() == {"used"}


class TestEvaluation:
    def test_xor_truth_table(self):
        c = xor_circuit()
        assert not c.evaluate({"a": False, "b": False})
        assert c.evaluate({"a": True, "b": False})
        assert c.evaluate({"a": False, "b": True})
        assert not c.evaluate({"a": True, "b": True})

    def test_missing_variable(self):
        c = xor_circuit()
        with pytest.raises(ReproError, match="missing variable"):
            c.evaluate({"a": True})

    def test_gate_level_evaluation(self):
        c = Circuit()
        x = c.variable("x")
        g = c.negation(x)
        c.set_output(g)
        assert c.evaluate({"x": False}, gate_id=x) is False
        assert c.evaluate({"x": False}, gate_id=g) is True


class TestTransformations:
    def test_restricted_pins_variable(self):
        c = xor_circuit()
        pinned = c.restricted({"a": True})
        assert pinned.variables() == {"b"}
        assert pinned.evaluate({"b": False}) is True
        assert pinned.evaluate({"b": True}) is False

    def test_binarized_preserves_semantics(self):
        c = Circuit()
        inputs = [c.variable(f"x{i}") for i in range(7)]
        c.set_output(c.and_gate(inputs))
        b = c.binarized()
        assert b.max_fan_in() <= 2
        valuation = {f"x{i}": True for i in range(7)}
        assert b.evaluate(valuation)
        valuation["x3"] = False
        assert not b.evaluate(valuation)

    def test_pruned_drops_unreachable(self):
        c = Circuit()
        c.and_gate([c.variable("dead1"), c.variable("dead2")])
        c.set_output(c.variable("live"))
        assert c.pruned().variables() == {"live"}

    def test_copy_into_with_substitution(self):
        inner = Circuit()
        inner.set_output(c_and := inner.and_gate([inner.variable("p"), inner.variable("q")]))
        outer = Circuit()
        sub = {"p": outer.variable("x"), "q": outer.negation(outer.variable("x"))}
        translation = inner.copy_into(outer, sub)
        outer.set_output(translation[c_and])
        assert not outer.evaluate({"x": True})
        assert not outer.evaluate({"x": False})

    def test_from_formula_roundtrip(self):
        f = (var("a") & ~var("b")) | var("c")
        c, gate = from_formula(f)
        c.set_output(gate)
        for a in (False, True):
            for b in (False, True):
                for cv in (False, True):
                    valuation = {"a": a, "b": b, "c": cv}
                    assert c.evaluate(valuation) == f.evaluate(valuation)


class TestMoralGraph:
    def test_gate_connected_to_inputs(self):
        c = xor_circuit()
        graph = moral_graph(c)
        out = c.output
        for child in c.gate(out).inputs:
            assert graph.has_edge(out, child)

    def test_inputs_pairwise_connected(self):
        c = Circuit()
        g = c.and_gate([c.variable("a"), c.variable("b")])
        c.set_output(g)
        graph = moral_graph(c)
        assert graph.has_edge(c.variable("a"), c.variable("b"))

    def test_circuit_width_small_for_chain(self):
        c = Circuit()
        acc = c.variable("x0")
        for i in range(1, 30):
            acc = c.and_gate([acc, c.variable(f"x{i}")])
        c.set_output(acc)
        assert circuit_width(c) <= 3


SPACE = EventSpace({"a": 0.3, "b": 0.7, "c": 0.5, "d": 0.9})


def random_small_circuit(seed: int) -> Circuit:
    import random

    rng = random.Random(seed)
    c = Circuit()
    gates = [c.variable(n) for n in "abcd"] + [c.true(), c.false()]
    for _ in range(rng.randint(2, 10)):
        op = rng.choice(["and", "or", "not"])
        if op == "not":
            gates.append(c.negation(rng.choice(gates)))
        else:
            picked = rng.sample(gates, rng.randint(2, 3))
            gates.append(c.and_gate(picked) if op == "and" else c.or_gate(picked))
    c.set_output(gates[-1])
    return c


class TestWmcEngines:
    def test_xor_probability(self):
        c = xor_circuit()
        expected = 0.3 * 0.3 + 0.7 * 0.7  # a(1-b) + (1-a)b with pa=.3, pb=.7
        assert math.isclose(wmc_enumerate(c, SPACE), expected)
        assert math.isclose(wmc_shannon(c, SPACE), expected)
        assert math.isclose(wmc_message_passing(c, SPACE), expected)

    def test_constant_output(self):
        c = Circuit()
        c.set_output(c.true())
        assert wmc_message_passing(c, SPACE) == 1.0
        c2 = Circuit()
        c2.set_output(c2.false())
        assert wmc_message_passing(c2, SPACE) == 0.0

    @pytest.mark.parametrize("seed", range(25))
    def test_engines_agree_on_random_circuits(self, seed):
        c = random_small_circuit(seed)
        reference = wmc_enumerate(c, SPACE)
        assert math.isclose(wmc_shannon(c, SPACE), reference, abs_tol=1e-9)
        assert math.isclose(wmc_message_passing(c, SPACE), reference, abs_tol=1e-9)

    def test_message_passing_width_guard(self):
        c = Circuit()
        # A complete "majority-ish" structure over many variables can exceed
        # a tiny width bound.
        layers = [c.variable(f"v{i}") for i in range(8)]
        big = c.or_gate(
            [c.and_gate([layers[i], layers[j]]) for i in range(8) for j in range(i + 1, 8)]
        )
        c.set_output(big)
        space = EventSpace({f"v{i}": 0.5 for i in range(8)})
        with pytest.raises(ReproError, match="exceeds max_width"):
            wmc_message_passing(c, space, max_width=1)

    def test_report_contains_width(self):
        c = xor_circuit()
        _p, report = wmc_message_passing(c, SPACE, return_report=True)
        assert report.width >= 1
        assert report.bag_count >= 1


class TestDetDecomposable:
    def test_probability_dd_on_shannon_form(self):
        # Shannon expansion of (a AND b): a·b + (1-a)·0 — det and decomposable.
        c = Circuit()
        a, b = c.variable("a"), c.variable("b")
        g = c.or_gate([c.and_gate([a, b])])
        c.set_output(g)
        assert math.isclose(probability_dd(c, SPACE), 0.3 * 0.7)

    def test_check_decomposability_flags_shared_vars(self):
        c = Circuit()
        a = c.variable("a")
        g = c.and_gate([a, c.or_gate([a, c.variable("b")])])
        c.set_output(g)
        assert not check_decomposability(c)

    def test_check_decomposability_accepts_disjoint(self):
        c = Circuit()
        g = c.and_gate([c.variable("a"), c.variable("b")])
        c.set_output(g)
        assert check_decomposability(c)

    def test_check_determinism_flags_overlapping_or(self):
        c = Circuit()
        g = c.or_gate([c.variable("a"), c.variable("b")])  # both can be true
        c.set_output(g)
        assert not check_determinism_sampled(c, trials=500)

    def test_check_determinism_accepts_exclusive_or(self):
        c = xor_circuit()
        assert check_determinism_sampled(c, trials=500)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_shannon_equals_enumeration_property(seed):
    c = random_small_circuit(seed)
    assert math.isclose(
        wmc_shannon(c, SPACE), wmc_enumerate(c, SPACE), abs_tol=1e-9
    )


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_message_passing_equals_enumeration_property(seed):
    c = random_small_circuit(seed)
    assert math.isclose(
        wmc_message_passing(c, SPACE), wmc_enumerate(c, SPACE), abs_tol=1e-9
    )


class TestBulkAppend:
    """The bulk arena APIs behind the witness-DNF provenance builder."""

    def test_append_variables_fast_path_matches_scalar(self):
        bulk, scalar = Circuit(), Circuit()
        names = [f"v{i}" for i in range(6)]
        got = list(bulk.append_variables(names))
        want = [scalar.variable(n) for n in names]
        assert got == want
        assert bulk._kind_codes == scalar._kind_codes
        assert bulk._var_slots == scalar._var_slots
        assert bulk._slot_names == scalar._slot_names

    def test_append_variables_dedups_existing(self):
        c = Circuit()
        a = c.variable("a")
        got = list(c.append_variables(["b", "a", "b", "c"]))
        assert got[1] == a
        assert got[0] == got[2]  # in-batch duplicate resolves to one gate
        assert c._slot_names == ["a", "b", "c"]

    def test_append_gates_matches_scalar_construction(self):
        from repro.circuits.circuit import K_AND, K_NOT, K_OR

        bulk, scalar = Circuit(), Circuit()
        bulk.append_variables(["x", "y"])
        scalar.variable("x")
        scalar.variable("y")
        got = bulk.append_gates(
            [K_AND, K_NOT, K_OR], [0, 1, 2, 0, 3], [0, 2, 3, 5]
        )
        g_and = scalar.and_gate([0, 1])
        g_not = scalar.negation(g_and)
        scalar.or_gate([0, g_not])
        assert list(got) == [2, 3, 4]
        assert bulk._kind_codes == scalar._kind_codes
        assert bulk._inputs_flat == scalar._inputs_flat
        assert bulk._input_offsets == scalar._input_offsets
        assert bulk._gate_levels == scalar._gate_levels

    def test_append_gates_rejects_bad_rows(self):
        from repro.circuits.circuit import K_AND, K_VAR

        c = Circuit()
        c.append_variables(["x", "y"])
        with pytest.raises(ReproError, match="operator gates only"):
            c.append_gates([K_VAR], [0], [0, 1])
        with pytest.raises(ReproError, match=">= 1 input"):
            c.append_gates([K_AND], [], [0, 0])
        with pytest.raises(ReproError, match="one entry per gate"):
            c.append_gates([K_AND], [0, 1], [0])
        with pytest.raises(ReproError, match="earlier gates"):
            c.append_gates([K_AND], [0, 7], [0, 2])
