"""Relational substrate: instances, TIDs, c-/pc-/pcc-instances (S4)."""

from repro.instances.base import (
    AbstractInstance,
    Constant,
    Fact,
    Instance,
    fact,
    variable_name_of,
)
from repro.instances.cinstance import CInstance, PCInstance
from repro.instances.cinstance import from_tid as pc_from_tid
from repro.instances.columnar import (
    ColumnarInstance,
    instance_backend,
    instance_backend_set,
    make_instance,
    set_instance_backend,
)
from repro.instances.pcc import PCCInstance
from repro.instances.pcc import from_pc_instance as pcc_from_pc
from repro.instances.pcc import from_tid as pcc_from_tid
from repro.instances.tid import TIDInstance

__all__ = [
    "AbstractInstance",
    "CInstance",
    "ColumnarInstance",
    "Constant",
    "Fact",
    "Instance",
    "PCCInstance",
    "PCInstance",
    "TIDInstance",
    "fact",
    "instance_backend",
    "instance_backend_set",
    "make_instance",
    "pc_from_tid",
    "pcc_from_pc",
    "pcc_from_tid",
    "set_instance_backend",
    "variable_name_of",
]
