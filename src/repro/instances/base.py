"""Relational instances: schemas, facts, and Gaifman graphs.

The deterministic substrate on which all uncertainty formalisms are layered.
A fact is a relation name applied to a tuple of constants; an instance is a
finite set of facts. The *Gaifman graph* of an instance connects two domain
elements when they co-occur in a fact — its treewidth is what "tree-like
data" means in the paper (Theorem 1 defines the treewidth of a TID as that of
its underlying instance).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass

import networkx as nx

from repro.util import check

Constant = Hashable


@dataclass(frozen=True)
class Fact:
    """A ground fact ``relation(args...)``.

    >>> Fact("From", ("CDG", "MEL"))
    From(CDG, MEL)
    """

    relation: str
    args: tuple[Constant, ...]

    def __post_init__(self):
        check(isinstance(self.args, tuple), "fact arguments must be a tuple")

    @property
    def arity(self) -> int:
        """Number of arguments."""
        return len(self.args)

    @property
    def variable_name(self) -> str:
        """Canonical Boolean-variable name for the presence of this fact."""
        inside = ",".join(str(a) for a in self.args)
        return f"f:{self.relation}({inside})"

    def __repr__(self) -> str:
        inside = ", ".join(str(a) for a in self.args)
        return f"{self.relation}({inside})"


def fact(relation: str, *args: Constant) -> Fact:
    """Convenience constructor: ``fact("R", 1, 2) == Fact("R", (1, 2))``."""
    return Fact(relation, tuple(args))


class Instance:
    """A finite set of facts with set semantics.

    Iteration order is deterministic (insertion order), which keeps every
    downstream construction reproducible.
    """

    def __init__(self, facts: Iterable[Fact] = ()):
        self._facts: dict[Fact, None] = {}
        for f in facts:
            self.add(f)

    def add(self, f: Fact) -> Fact:
        """Insert a fact (idempotent) and return it."""
        self._facts.setdefault(f, None)
        return f

    def discard(self, f: Fact) -> None:
        """Remove a fact if present."""
        self._facts.pop(f, None)

    def __contains__(self, f: Fact) -> bool:
        return f in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return set(self._facts) == set(other._facts)

    def __hash__(self):  # pragma: no cover - instances used as dict keys rarely
        return hash(frozenset(self._facts))

    def facts(self) -> list[Fact]:
        """Return the facts as a list, in insertion order."""
        return list(self._facts)

    def relations(self) -> dict[str, int]:
        """Return the schema observed in the data: relation name → arity."""
        schema: dict[str, int] = {}
        for f in self._facts:
            previous = schema.setdefault(f.relation, f.arity)
            check(previous == f.arity, f"relation {f.relation!r} used with two arities")
        return schema

    def by_relation(self, relation: str) -> list[Fact]:
        """Return all facts of the given relation, in insertion order."""
        return [f for f in self._facts if f.relation == relation]

    def domain(self) -> frozenset[Constant]:
        """Return the active domain: all constants appearing in facts."""
        elements: set[Constant] = set()
        for f in self._facts:
            elements.update(f.args)
        return frozenset(elements)

    def gaifman_graph(self) -> nx.Graph:
        """Return the Gaifman graph: constants adjacent iff they share a fact."""
        graph = nx.Graph()
        graph.add_nodes_from(self.domain())
        for f in self._facts:
            for i, a in enumerate(f.args):
                for b in f.args[i + 1 :]:
                    if a != b:
                        graph.add_edge(a, b)
        return graph

    def treewidth_upper_bound(self, heuristic: str = "min_fill") -> int:
        """Heuristic treewidth of the Gaifman graph (Theorem 1's parameter)."""
        from repro.treewidth import decompose

        return decompose(self.gaifman_graph(), heuristic).width()

    def restricted_to(self, keep: Iterable[Fact]) -> "Instance":
        """Return the sub-instance with only the facts in ``keep``."""
        keep_set = set(keep)
        return Instance(f for f in self._facts if f in keep_set)

    def union(self, other: "Instance") -> "Instance":
        """Return the union of two instances."""
        merged = Instance(self._facts)
        for f in other:
            merged.add(f)
        return merged

    def __repr__(self) -> str:
        preview = ", ".join(repr(f) for f in list(self._facts)[:4])
        suffix = ", ..." if len(self._facts) > 4 else ""
        return f"Instance({{{preview}{suffix}}}, size={len(self._facts)})"
